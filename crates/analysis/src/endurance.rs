//! SSD lifespan and PCIe bandwidth projection — the Figure 9 sweep.
//!
//! For every large-system configuration the paper models: per-GPU
//! activation volume per step, required PCIe write bandwidth (volume
//! over half the step time), projected lifespan of a 4-drive per-GPU
//! array, and the maximal activation volume offloading can open up
//! (keeping only two layers resident).

use crate::activations::ActivationModel;
use crate::perfmodel::StepTimeModel;
use serde::{Deserialize, Serialize};
use ssdtrain_simhw::catalog::{ssds, MegatronConfig};
use ssdtrain_simhw::ssd::YEAR_SECS;
use ssdtrain_simhw::{Raid0, WearMeter};

/// One row of the Figure 9 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Framework label (`Megatron` / `ZeRO3`).
    pub framework: String,
    /// Model size in billions of parameters.
    pub params_b: f64,
    /// Total GPUs.
    pub gpus: usize,
    /// Seconds per training step.
    pub step_secs: f64,
    /// Activation bytes produced per GPU per step.
    pub act_bytes_per_gpu: u64,
    /// Required PCIe write bandwidth per GPU, bytes/s.
    pub pcie_write_bps: f64,
    /// Projected SSD-array lifespan in years.
    pub lifespan_years: f64,
    /// Maximal activation bytes per GPU per step offloading opens up.
    pub max_act_bytes_per_gpu: u64,
    /// Micro-batch size achieving that maximum.
    pub max_micro_batch: usize,
}

/// Full lifespan projection for one configuration.
#[derive(Debug, Clone)]
pub struct LifespanProjection {
    /// The per-GPU SSD array assumed (paper: four Solidigm D7-P5810).
    pub array: Raid0,
    /// Workload write-amplification factor (sequential ≈ 1).
    pub workload_waf: f64,
}

impl Default for LifespanProjection {
    fn default() -> Self {
        LifespanProjection {
            // The paper assumes "four Solidigm D7-P5810 12.8TB" per GPU
            // (Section 3.4) — P5810 endurance at 12.8 TB capacity.
            array: Raid0::new(ssds::solidigm_p5810_12t8(), 4),
            workload_waf: 1.0,
        }
    }
}

/// The configurations Figure 9 sweeps: the published large-system runs
/// with hidden ≥ 8192. The paper notes "a model with more than 60b
/// parameters has a hidden dimension of no less than 8k"; smaller-hidden
/// configs have an unfavourable bytes-per-FLOP ratio and are outside the
/// figure's scope (the bench prints them separately for completeness).
pub fn figure9_configs() -> Vec<MegatronConfig> {
    ssdtrain_simhw::catalog::megatron_configs()
        .into_iter()
        .filter(|c| c.hidden >= 8192)
        .collect()
}

impl LifespanProjection {
    /// Projects one sweep row from a published configuration.
    pub fn project(&self, cfg: &MegatronConfig) -> SweepRow {
        let time = StepTimeModel::from_megatron(cfg);
        let dp = (cfg.gpus / (cfg.tp * cfg.pp)).max(1);
        let batch_per_gpu = (cfg.batch / dp).max(1);
        let layers_per_gpu = (cfg.layers / cfg.pp).max(1);
        // Large Megatron systems enable sequence parallelism, sharding
        // every activation term across the TP group.
        let mut act =
            ActivationModel::fp16(batch_per_gpu, cfg.seq, cfg.hidden, layers_per_gpu, cfg.tp);
        if cfg.tp > 1 {
            act = act.with_seq_parallel();
        }
        let act_bytes = act.step_total_bytes();
        let pcie = act.required_write_bps(time.step_secs);
        let meter: WearMeter = self.array.wear_meter(self.workload_waf);
        let lifespan = meter.projected_lifespan_years(act_bytes.max(1), time.step_secs);

        // Maximal activations (Figure 9 diamonds): grow the micro-batch
        // until two layers' activations fill a 40 GB A100's activation
        // budget (paper Section 3.4). A step then processes enough
        // micro-batches to keep the pipeline full (at least `pp`) and to
        // cover the configured per-GPU batch — the total offloaded
        // volume those sequences produce is what offloading opens up.
        let mut per_seq = ActivationModel::fp16(1, cfg.seq, cfg.hidden, layers_per_gpu, cfg.tp);
        if cfg.tp > 1 {
            per_seq = per_seq.with_seq_parallel();
        }
        let per_layer_b1 = per_seq.layer_bytes();
        let budget: u64 = 30 * (1 << 30); // 40 GB minus weights/optimizer
        let max_mb = (budget / (2 * per_layer_b1)).max(1) as usize;
        let seqs_per_step = batch_per_gpu.max(cfg.pp * max_mb);
        let max_act = per_seq.step_total_bytes() * seqs_per_step as u64;

        SweepRow {
            framework: cfg.framework.clone(),
            params_b: cfg.params_b,
            gpus: cfg.gpus,
            step_secs: time.step_secs,
            act_bytes_per_gpu: act_bytes,
            pcie_write_bps: pcie,
            lifespan_years: lifespan,
            max_act_bytes_per_gpu: max_act,
            max_micro_batch: max_mb,
        }
    }

    /// Lifespan in years if the data-retention period is relaxed,
    /// multiplying PE cycles (paper Section 3.4 cites ~50× for 3 years →
    /// 3 days).
    pub fn lifespan_with_retention_relaxation(
        &self,
        row: &SweepRow,
        from_days: f64,
        to_days: f64,
    ) -> f64 {
        let factor = ssdtrain_simhw::ssd::retention_relaxation_factor(from_days, to_days);
        row.lifespan_years * factor
    }
}

/// Convenience: lifespan in years from endurance bytes, step time and
/// bytes per step (`t_life = S_endurance · t_step / S_activations`).
pub fn lifespan_years(endurance_bytes: f64, step_secs: f64, bytes_per_step: u64) -> f64 {
    endurance_bytes * step_secs / (bytes_per_step as f64 * YEAR_SECS)
}

#[cfg(test)]
mod tests {
    use super::figure9_configs;
    use super::*;

    #[test]
    fn all_projected_lifespans_exceed_three_years() {
        // The paper's headline Figure 9 claim.
        let proj = LifespanProjection::default();
        for cfg in figure9_configs() {
            let row = proj.project(&cfg);
            assert!(
                row.lifespan_years > 3.0,
                "{} {}B on {}: {:.1} years",
                row.framework,
                row.params_b,
                row.gpus,
                row.lifespan_years
            );
        }
    }

    #[test]
    fn pcie_bandwidth_stays_under_the_paper_bound() {
        // Paper: required per-GPU PCIe write bandwidth ≤ 12.1 GB/s across
        // the sweep.
        let proj = LifespanProjection::default();
        for cfg in figure9_configs() {
            let row = proj.project(&cfg);
            assert!(
                row.pcie_write_bps < 13e9,
                "{} {}B: {:.1} GB/s",
                row.framework,
                row.params_b,
                row.pcie_write_bps / 1e9
            );
        }
    }

    #[test]
    fn scaling_up_reduces_bandwidth_and_extends_lifespan() {
        // Paper: "when the system size and/or the model size scales up,
        // the required PCIe write bandwidth reduces, and the projected
        // lifespan increases" (weak-scaling argument). Compare the
        // smallest and largest Megatron configs.
        let proj = LifespanProjection::default();
        let configs = figure9_configs();
        let small = proj.project(&configs[0]);
        let large = proj.project(
            configs
                .iter()
                .rfind(|c| c.framework == "Megatron")
                .expect("1T config"),
        );
        assert!(
            large.pcie_write_bps < small.pcie_write_bps,
            "{} vs {}",
            large.pcie_write_bps,
            small.pcie_write_bps
        );
        assert!(large.lifespan_years > small.lifespan_years);
    }

    #[test]
    fn max_activation_volume_is_hundreds_of_gigabytes() {
        // Paper: 0.4–1.8 TB per GPU per step across the sweep, far
        // beyond host memory — the SSD-capacity argument.
        let proj = LifespanProjection::default();
        let mut max_seen: u64 = 0;
        for cfg in figure9_configs() {
            let row = proj.project(&cfg);
            assert!(
                row.max_act_bytes_per_gpu > 100_000_000_000,
                "{}B: {:.2} TB",
                row.params_b,
                row.max_act_bytes_per_gpu as f64 / 1e12
            );
            max_seen = max_seen.max(row.max_act_bytes_per_gpu);
        }
        assert!(max_seen as f64 > 0.4e12, "peak {max_seen}");
    }

    #[test]
    fn retention_relaxation_multiplies_lifespan() {
        let proj = LifespanProjection::default();
        let row = proj.project(&figure9_configs()[0]);
        let relaxed = proj.lifespan_with_retention_relaxation(&row, 3.0 * 365.25, 3.0);
        assert!((relaxed / row.lifespan_years - 50.0).abs() < 1.5);
    }

    #[test]
    fn lifespan_helper_matches_formula() {
        let y = lifespan_years(1e15, 1.0, 10_000_000_000);
        assert!((y - 1e5 / YEAR_SECS).abs() < 1e-9);
    }
}
