//! Growth-trend arithmetic: Figure 1 and the Section 2.2 scaling-law
//! argument.
//!
//! The paper's motivating observation: GPU FP16 throughput and LLM sizes
//! grow in lock-step, but GPU memory capacity grows slower than even the
//! *square root* of throughput — and under Chinchilla scaling the
//! whole-system activation volume grows like `C^(5/6)`, faster than any
//! other memory use, so the capacity gap keeps widening.

use serde::{Deserialize, Serialize};

/// End of the observation window of the paper's Figure 1 (its trend data
/// was accessed mid-2024 and the capacity-focused H200/B200 parts shipped
/// at the margin of it). Fits reproducing the figure use accelerators up
/// to this year; the full catalog extends beyond it, and the extra points
/// show the capacity response that arrived *after* the paper.
pub const FIGURE1_WINDOW_END: f64 = 2023.5;

/// An exponential fit `y ≈ a · exp(b · (x - x0))` over (year, value)
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendFit {
    /// Value at the reference year.
    pub a: f64,
    /// Continuous growth rate per year.
    pub b: f64,
    /// Reference year.
    pub x0: f64,
}

impl TrendFit {
    /// Predicted value at `year`.
    pub fn predict(&self, year: f64) -> f64 {
        self.a * (self.b * (year - self.x0)).exp()
    }

    /// Compound annual growth rate (e.g. `1.0` = doubling ≈ 100%/year).
    pub fn cagr(&self) -> f64 {
        self.b.exp() - 1.0
    }

    /// Doubling time in years.
    pub fn doubling_years(&self) -> f64 {
        std::f64::consts::LN_2 / self.b
    }
}

/// Least-squares exponential fit through `(year, value)` points (linear
/// regression in log space).
///
/// # Panics
/// Panics with fewer than two points or non-positive values.
pub fn fit_exponential(points: &[(f64, f64)]) -> TrendFit {
    assert!(points.len() >= 2, "need at least two points");
    let x0 = points[0].0;
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        assert!(y > 0.0, "exponential fit needs positive values");
        let xr = x - x0;
        let ly = y.ln();
        sx += xr;
        sy += ly;
        sxx += xr * xr;
        sxy += xr * ly;
    }
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let ln_a = (sy - b * sx) / n;
    TrendFit {
        a: ln_a.exp(),
        b,
        x0,
    }
}

/// Compound annual growth rate between two (year, value) endpoints.
///
/// # Panics
/// Panics if years coincide or values are non-positive.
pub fn cagr(from: (f64, f64), to: (f64, f64)) -> f64 {
    assert!(to.0 != from.0, "distinct years required");
    assert!(from.1 > 0.0 && to.1 > 0.0, "positive values required");
    (to.1 / from.1).powf(1.0 / (to.0 - from.0)) - 1.0
}

/// The Section 2.2 exponents under Chinchilla scaling: with compute `C`,
/// parameters `N ∝ C^0.5`, batch tokens `D ∝ C^0.5`, hidden `h ∝ N^(1/3)`
/// — returns `(activation_exponent, other_memory_exponent)`, i.e.
/// `S_activations ∝ C^(5/6)` and `S_others ∝ C^(1/2)`.
pub fn chinchilla_memory_exponents() -> (f64, f64) {
    let n_exp: f64 = 0.5;
    let d_exp: f64 = 0.5;
    let h_exp = n_exp / 3.0;
    // S_act ∝ (N / h) · D = C^(0.5 - 1/6 + 0.5)
    (n_exp - h_exp + d_exp, n_exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_simhw::catalog::{accelerators, llms};

    fn flops_points() -> Vec<(f64, f64)> {
        accelerators()
            .into_iter()
            .filter(|a| a.year <= FIGURE1_WINDOW_END)
            .map(|a| (a.year, a.fp16_tflops))
            .collect()
    }

    fn memory_points() -> Vec<(f64, f64)> {
        accelerators()
            .into_iter()
            .filter(|a| a.year <= FIGURE1_WINDOW_END)
            .map(|a| (a.year, a.memory_gb))
            .collect()
    }

    #[test]
    fn exponential_fit_recovers_known_growth() {
        // y doubles every year from 1 at 2000.
        let pts: Vec<(f64, f64)> = (0..6).map(|i| (2000.0 + i as f64, 2f64.powi(i))).collect();
        let fit = fit_exponential(&pts);
        assert!((fit.cagr() - 1.0).abs() < 1e-6, "{}", fit.cagr());
        assert!((fit.predict(2003.0) - 8.0).abs() < 1e-6);
        assert!((fit.doubling_years() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn figure1_memory_grows_slower_than_sqrt_of_throughput() {
        // The paper's green-dashed-line argument.
        let flops_fit = fit_exponential(&flops_points());
        let mem_fit = fit_exponential(&memory_points());
        assert!(
            mem_fit.b < flops_fit.b / 2.0,
            "memory {:.3}/yr vs sqrt(flops) {:.3}/yr",
            mem_fit.b,
            flops_fit.b / 2.0
        );
    }

    #[test]
    fn figure1_llm_size_tracks_throughput_growth() {
        // Model sizes and FP16 throughput grow at the same order;
        // capacity lags both.
        let flops_fit = fit_exponential(&flops_points());
        let llm_fit = fit_exponential(
            &llms()
                .into_iter()
                .map(|l| (l.year, l.params_b))
                .collect::<Vec<_>>(),
        );
        let mem_fit = fit_exponential(&memory_points());
        assert!(llm_fit.b > mem_fit.b, "LLMs must outgrow GPU memory");
        assert!(flops_fit.b > mem_fit.b, "throughput must outgrow memory");
    }

    #[test]
    fn chinchilla_activations_dominate() {
        let (act, others) = chinchilla_memory_exponents();
        assert!((act - 5.0 / 6.0).abs() < 1e-12);
        assert!((others - 0.5).abs() < 1e-12);
        assert!(act > others, "activations must outgrow other memory");
        assert!(act < 1.0, "but still grow slower than compute");
    }

    #[test]
    fn cagr_endpoint_helper() {
        let g = cagr((2020.0, 100.0), (2022.0, 400.0));
        assert!((g - 1.0).abs() < 1e-12); // 2x per year
    }
}
