//! Closed-form per-step activation volume.
//!
//! This is the `S_activations` model of paper Section 3.4, validated in
//! Table 4 against the measured offloaded amount. The formula mirrors
//! exactly what the instantiated models save per layer (FlashAttention
//! layers, bias+dropout blocks, one-byte dropout masks, Megatron
//! tensor-parallel sharding):
//!
//! * attention block: LN input + QKV input (deduplicated) at `2·B·S·h`
//!   bytes each, Q/K/V head tensors `3 · 2·B·S·h/tp`, merged context
//!   `2·B·S·h/tp`, dropout mask `B·S·h`;
//! * MLP block: LN input + FC1 input at `2·B·S·h` each, FC1 output and
//!   GELU output `2 · 2·B·S·4h/tp`, dropout mask `B·S·h`.

use serde::{Deserialize, Serialize};

/// Closed-form activation-bytes model for one transformer layer stack.
///
/// ```
/// use ssdtrain_analysis::ActivationModel;
/// // The paper's Table 4 H8192 row: BERT, batch 16, TP 2.
/// let m = ActivationModel::fp16(16, 1024, 8192, 4, 2);
/// let gb = m.step_offload_bytes() as f64 / 1e9;
/// assert!((9.0..14.0).contains(&gb));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationModel {
    /// Micro-batch size per GPU (sequences).
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Layers resident on this GPU (total layers / pipeline stages).
    pub layers: usize,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Bytes per activation element (2 for FP16).
    pub elem_bytes: u64,
    /// Megatron sequence parallelism: layer-norm inputs, residuals and
    /// masks are sharded across the TP group too, dividing *all*
    /// activation terms by `tp` (enabled in the large-system sweep, as
    /// in llm-analysis; the paper's two-GPU testbed does not use it).
    pub seq_parallel: bool,
}

impl ActivationModel {
    /// A paper-style FP16 configuration.
    pub fn fp16(batch: usize, seq: usize, hidden: usize, layers: usize, tp: usize) -> Self {
        ActivationModel {
            batch,
            seq,
            hidden,
            layers,
            tp,
            elem_bytes: 2,
            seq_parallel: false,
        }
    }

    /// Enables sequence-parallel activation sharding.
    pub fn with_seq_parallel(mut self) -> Self {
        self.seq_parallel = true;
        self
    }

    fn bsh(&self) -> u64 {
        (self.batch * self.seq * self.hidden) as u64
    }

    /// Offloadable bytes of one attention block.
    pub fn attn_block_bytes(&self) -> u64 {
        let e = self.elem_bytes;
        let bsh = self.bsh();
        let tp = self.tp as u64;
        let rep = if self.seq_parallel { tp } else { 1 };
        // ln input + qkv input + (q,k,v + merged)/tp + u8 mask
        (2 * e * bsh + bsh) / rep + 4 * e * bsh / tp
    }

    /// Offloadable bytes of one MLP block.
    pub fn mlp_block_bytes(&self) -> u64 {
        let e = self.elem_bytes;
        let bsh = self.bsh();
        let tp = self.tp as u64;
        let rep = if self.seq_parallel { tp } else { 1 };
        // ln input + fc1 input + 2 × 4h inner tensors / tp + u8 mask
        (2 * e * bsh + bsh) / rep + 8 * e * bsh / tp
    }

    /// Offloadable bytes of one transformer layer.
    pub fn layer_bytes(&self) -> u64 {
        self.attn_block_bytes() + self.mlp_block_bytes()
    }

    /// Offloadable bytes of the embedding scope (the summed embedding and
    /// its dropout mask).
    pub fn embed_bytes(&self) -> u64 {
        let rep = if self.seq_parallel { self.tp as u64 } else { 1 };
        (2 * self.elem_bytes * self.bsh() / 2 + self.bsh()) / rep
    }

    /// Total offloadable activation bytes per training step per GPU (the
    /// Table 4 "model estimate"). The final module is kept in GPU memory
    /// (Figure 4 ④), so it is excluded, matching the measured offloaded
    /// amount.
    pub fn step_offload_bytes(&self) -> u64 {
        let full = self.layer_bytes() * self.layers as u64 + self.embed_bytes();
        full.saturating_sub(self.mlp_block_bytes())
    }

    /// Total activation bytes produced per step (kept modules included) —
    /// the `S_activations` of the lifespan projection.
    pub fn step_total_bytes(&self) -> u64 {
        self.layer_bytes() * self.layers as u64 + self.embed_bytes()
    }

    /// Required PCIe write bandwidth to fully offload: total bytes over
    /// half the step time (paper Section 3.4 — late activations may be
    /// written during early backward).
    pub fn required_write_bps(&self, step_secs: f64) -> f64 {
        self.step_total_bytes() as f64 / (step_secs / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table4_scale_estimates() {
        // Paper Table 4 (BERT, batch 16, TP over 2 GPUs): offloaded
        // amounts ≈ 10.4–12.9 GB across (H8192,L4) (H12288,L3)
        // (H16384,L2). Our model counts the same tensor classes and must
        // land in the same band.
        for (h, l, lo, hi) in [
            (8192usize, 4usize, 9.0, 14.0),
            (12288, 3, 10.0, 16.0),
            (16384, 2, 9.0, 14.0),
        ] {
            let m = ActivationModel::fp16(16, 1024, h, l, 2);
            let gb = m.step_offload_bytes() as f64 / 1e9;
            assert!((lo..hi).contains(&gb), "H{h} L{l}: {gb:.2} GB");
        }
    }

    #[test]
    fn bandwidth_requirement_falls_with_hidden_size() {
        // Paper Table 4: required PCIe write bandwidth drops as hidden
        // grows (compute grows h², activations h). Step time modelled as
        // FLOP-proportional.
        let step = |h: usize, l: usize| -> f64 {
            // ~24·B·S·h²·L flops fwd, ×3 for the step, at a fixed rate.
            3.0 * 24.0 * 16.0 * 1024.0 * (h as f64).powi(2) * l as f64 / 280e12
        };
        let bw = |h: usize, l: usize| -> f64 {
            ActivationModel::fp16(16, 1024, h, l, 2).required_write_bps(step(h, l))
        };
        let b8 = bw(8192, 4);
        let b12 = bw(12288, 3);
        let b16 = bw(16384, 2);
        assert!(b8 > b12 && b12 > b16, "{b8} {b12} {b16}");
        // And the absolute H8192 value sits near the paper's 18 GB/s.
        assert!((10e9..30e9).contains(&b8), "{b8}");
    }

    #[test]
    fn tp_divides_sharded_tensors_only() {
        let m1 = ActivationModel::fp16(8, 512, 4096, 2, 1);
        let m2 = ActivationModel::fp16(8, 512, 4096, 2, 2);
        assert!(m2.layer_bytes() > m1.layer_bytes() / 2);
        assert!(m2.layer_bytes() < m1.layer_bytes());
    }

    #[test]
    fn layer_bytes_scale_linearly_in_batch_and_hidden() {
        let base = ActivationModel::fp16(4, 256, 1024, 1, 1).layer_bytes();
        assert_eq!(
            ActivationModel::fp16(8, 256, 1024, 1, 1).layer_bytes(),
            2 * base
        );
        assert_eq!(
            ActivationModel::fp16(4, 256, 2048, 1, 1).layer_bytes(),
            2 * base
        );
    }
}
