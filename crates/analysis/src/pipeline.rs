//! Pipeline-parallel bubble analysis (paper Section 4.4, "Impact of
//! upscaling"): pipeline parallelism idles devices in proportion to
//! `(pp − 1) / (m + pp − 1)` for `m` micro-batches per step, so raising
//! `m` raises utilisation — but a 1F1B schedule keeps up to `pp`
//! micro-batches of activations resident per stage, which is exactly
//! the memory that activation offloading opens up.

use crate::activations::ActivationModel;
use serde::{Deserialize, Serialize};

/// Idle fraction of a `pp`-stage pipeline running `m` micro-batches
/// (GPipe/1F1B bubble formula).
///
/// # Panics
/// Panics if `pp == 0` or `m == 0`.
pub fn bubble_fraction(pp: usize, m: usize) -> f64 {
    assert!(pp > 0 && m > 0, "pipeline stages and micro-batches > 0");
    (pp as f64 - 1.0) / (m as f64 + pp as f64 - 1.0)
}

/// Throughput multiplier relative to a bubble-free schedule.
pub fn pipeline_efficiency(pp: usize, m: usize) -> f64 {
    1.0 - bubble_fraction(pp, m)
}

/// Activation residency of one pipeline stage under 1F1B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageResidency {
    /// Micro-batches of activations a stage holds at its peak
    /// (min(m, pp) for 1F1B; the first stage is the worst).
    pub resident_micro_batches: usize,
    /// Bytes of activations resident with the keep strategy.
    pub keep_bytes: u64,
    /// Bytes resident with offloading (roughly two modules in flight
    /// per micro-batch being processed — the paper's two-layer rule).
    pub offload_bytes: u64,
}

/// Computes the stage-0 activation residency for a per-micro-batch
/// activation model under 1F1B with `pp` stages and `m` micro-batches.
pub fn stage_residency(per_micro_batch: &ActivationModel, pp: usize, m: usize) -> StageResidency {
    let resident = m.min(pp);
    let keep = per_micro_batch.step_total_bytes() * resident as u64;
    // Offloading keeps ~2 layers of the active micro-batch plus the
    // in-flight transfer window; earlier micro-batches' activations are
    // on the SSD.
    let offload = 2 * per_micro_batch.layer_bytes() + per_micro_batch.layer_bytes();
    StageResidency {
        resident_micro_batches: resident,
        keep_bytes: keep,
        offload_bytes: offload,
    }
}

/// The largest micro-batch count a stage can run before its 1F1B
/// activation residency exceeds `budget_bytes`, for keep vs offload.
/// Returns `(keep_max_m, offload_unbounded)` — with offloading the
/// residency no longer grows with `m`, which is the paper's point: the
/// freed memory can buy pipeline utilisation.
pub fn max_micro_batches(
    per_micro_batch: &ActivationModel,
    pp: usize,
    budget_bytes: u64,
) -> (usize, bool) {
    let per_mb = per_micro_batch.step_total_bytes();
    let keep_max = (budget_bytes / per_mb.max(1)) as usize; // saturates at pp resident
    let offload_fits = stage_residency(per_micro_batch, pp, 1).offload_bytes <= budget_bytes;
    (keep_max, offload_fits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_formula_matches_known_points() {
        assert_eq!(bubble_fraction(1, 8), 0.0);
        assert!((bubble_fraction(4, 1) - 0.75).abs() < 1e-12);
        assert!((bubble_fraction(4, 13) - 3.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn more_micro_batches_raise_efficiency() {
        let mut prev = 0.0;
        for m in [1, 2, 4, 8, 16, 32] {
            let e = pipeline_efficiency(8, m);
            assert!(e > prev);
            prev = e;
        }
        assert!(prev > 0.8, "32 micro-batches on 8 stages: {prev}");
    }

    #[test]
    fn keep_residency_grows_with_micro_batches_until_pp() {
        let act = ActivationModel::fp16(4, 1024, 8192, 6, 2);
        let r1 = stage_residency(&act, 8, 2);
        let r2 = stage_residency(&act, 8, 6);
        let r3 = stage_residency(&act, 8, 32);
        assert!(r1.keep_bytes < r2.keep_bytes);
        assert_eq!(r2.keep_bytes / r1.keep_bytes, 3);
        assert_eq!(r3.resident_micro_batches, 8, "1F1B caps at pp");
        // Offload residency is flat in m.
        assert_eq!(r1.offload_bytes, r3.offload_bytes);
        assert!(r3.offload_bytes < r3.keep_bytes / 4);
    }

    #[test]
    fn offloading_unlocks_micro_batch_counts_keep_cannot_hold() {
        let act = ActivationModel::fp16(8, 1024, 8192, 8, 2);
        let budget = 20u64 * (1 << 30);
        let (keep_max, offload_fits) = max_micro_batches(&act, 8, budget);
        assert!(keep_max < 8, "keep cannot fill the pipeline: {keep_max}");
        assert!(offload_fits, "offload residency fits the same budget");
    }
}
