//! # ssdtrain-analysis
//!
//! The paper's performance-modelling layer (Section 3.4): an extension of
//! the `llm-analysis` approach that projects, for large training systems,
//!
//! * forward/step time from measured per-GPU throughput,
//! * per-GPU activation volume per step (validated against functional
//!   runs in Table 4),
//! * the PCIe write bandwidth required to fully overlap offloading,
//! * SSD lifespan under activation-offload write traffic (Figure 9),
//! * the maximal per-GPU activation volume offloading can open up, and
//! * the growth-trend arithmetic behind Figure 1 and Section 2.2.

pub mod activations;
pub mod endurance;
pub mod perfmodel;
pub mod pipeline;
pub mod scaling;
pub mod zero;

pub use activations::ActivationModel;
pub use endurance::{LifespanProjection, SweepRow};
pub use perfmodel::StepTimeModel;
pub use scaling::{cagr, fit_exponential, TrendFit};
pub use zero::{ZeroMemoryModel, ZeroStage};
