//! Tensor-cache configuration and the ROK placement strategies.

use serde::{Deserialize, Serialize};

/// Where activations live between forward and backward — the three
/// corners of the paper's recompute-offload-keep (ROK) design space
/// (Section 4.3, Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Keep every activation in GPU memory (the PyTorch default).
    Keep,
    /// Offload to SSD through the tensor cache (the paper's system).
    #[default]
    Offload,
    /// Layerwise full recomputation (activation checkpointing).
    Recompute,
    /// Recompute the first `recompute_layers` layers and offload the
    /// rest — an interior point of the ROK plane and the joint
    /// optimisation the paper's Section 4.4 leaves open. Exercises the
    /// cache's keep-in-memory path for recomputed activations
    /// (Algorithm 2 line 15).
    Hybrid {
        /// Layers (per stack, in forward order) under checkpointing.
        recompute_layers: usize,
    },
}

impl PlacementStrategy {
    /// Stable lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            PlacementStrategy::Keep => "keep",
            PlacementStrategy::Offload => "offload",
            PlacementStrategy::Recompute => "recompute",
            PlacementStrategy::Hybrid { .. } => "hybrid",
        }
    }

    /// Whether this strategy runs the tensor cache.
    pub const fn uses_cache(self) -> bool {
        matches!(
            self,
            PlacementStrategy::Offload | PlacementStrategy::Hybrid { .. }
        )
    }
}

impl std::fmt::Display for PlacementStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the tensor cache does when the offload target fails an I/O
/// operation (see the fault-injection subsystem,
/// [`ssdtrain_simhw::FaultPlan`] and [`crate::FaultyTarget`]).
///
/// Store failures are always absorbed by keeping the tensor resident —
/// the bytes never left GPU memory, so training continues bit-identical
/// to the no-fault run — the policy decides what *else* happens. Load
/// failures are retried up to [`TensorCacheConfig::max_io_retries`]
/// times and surface a structured [`crate::OffloadError`] regardless of
/// policy if they persist: the activation bytes are gone and no local
/// decision can bring them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Surface the first store failure as a step error. The tensor is
    /// still kept resident so the in-flight step stays numerically
    /// valid, but `run_step` reports `Err` and the training loop
    /// decides (abort, checkpoint, re-plan).
    FailStep,
    /// Absorb the failure: the tensor stays in GPU memory for the rest
    /// of the step and the step completes with degraded-mode counters
    /// (`store_failures`, `kept_resident_bytes`) reported.
    #[default]
    KeepResident,
    /// Re-issue the failed store to the cache's fallback target (the
    /// paper's CPU offloader as a spill-of-last-resort), retrying up to
    /// `max_io_retries` times; if the fallback also fails, degrade to
    /// [`RecoveryPolicy::KeepResident`] behaviour.
    FallbackTarget,
}

impl RecoveryPolicy {
    /// Stable lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            RecoveryPolicy::FailStep => "fail-step",
            RecoveryPolicy::KeepResident => "keep-resident",
            RecoveryPolicy::FallbackTarget => "fallback-target",
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tunables of the [`crate::TensorCache`]. Every optimisation the paper
/// describes can be disabled individually, which is what the ablation
/// benches sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorCacheConfig {
    /// Minimum element count for a tensor to be offloaded; smaller
    /// tensors are kept (paper Algorithm 2 line 12: `2**20`).
    pub min_offload_numel: usize,
    /// Deduplicate saves of the same tensor identity (Section 3.3.1).
    pub dedup: bool,
    /// Return in-flight stores from memory instead of reloading
    /// (Section 3.3.2, "data forwarding").
    pub forwarding: bool,
    /// Cancel queued store jobs whose tensor was forwarded
    /// (Section 3.3.3, adaptive offloading feature 1).
    pub cancel_forwarded_stores: bool,
    /// Apply the adaptive keep-the-tail plan produced by profiling
    /// (Section 3.3.3, feature 2). When `false`, everything eligible is
    /// offloaded and only the last module is implicitly kept by the
    /// prefetch-free fast path.
    pub adaptive: bool,
    /// Prefetch activations of upcoming modules during backward
    /// (Section 3.3.2). Disabling exposes every reload on the critical
    /// path — the behaviour of the non-async systems in Table 2.
    pub prefetch: bool,
    /// How many upcoming modules to keep in the load queue during
    /// backward. The paper notes any scheme works "as long as there are
    /// always I/O tasks in the GPU job queue to keep PCIe busy". Depth 1
    /// is the paper's scheme (prefetch the next module); raise it when a
    /// module's reload takes longer than a module's backward (small
    /// hidden sizes on fast GPUs).
    pub prefetch_depth: usize,
    /// Group size, in modules, for group-based double-buffered backward
    /// prefetch: the forward order is cut into groups of this many
    /// modules, and while group *k* is consumed group *k−1* loads into
    /// the second staging buffer (`prefetch_depth` groups stay in
    /// flight — 2 is the classic double buffer). `0` (the default)
    /// keeps the legacy per-module lookahead driven by
    /// `prefetch_depth` alone.
    #[serde(default)]
    pub prefetch_group_modules: usize,
    /// Coalesce small tensor stores into sequential segments of at most
    /// this many bytes before they reach the I/O queues: one segment is
    /// one store job and one device write operation, which is how the
    /// paper keeps the SSD write path dense (WAF → 1). `0` (the
    /// default) disables coalescing — every tensor is its own job, the
    /// pre-coalescer behaviour.
    #[serde(default)]
    pub coalesce_segment_bytes: u64,
    /// Backward-to-forward time ratio assumed by the adaptive planner
    /// (the paper estimates backward ≈ 2× forward).
    pub bwd_fwd_ratio: f64,
    /// Drive tier placement from the profile-guided cost model
    /// ([`crate::CostModel`]): profiling plans a per-module tier
    /// assignment scored by modeled step time, the cache applies it at
    /// pack time and re-plans between steps. When `false` (the default),
    /// placement keeps the static front-first tier walk.
    #[serde(default)]
    pub profile_guided: bool,
    /// What to do when the offload target fails an I/O operation.
    pub recovery: RecoveryPolicy,
    /// Extra attempts for failed loads (and fallback stores) before the
    /// failure is considered permanent.
    pub max_io_retries: u32,
}

impl Default for TensorCacheConfig {
    fn default() -> Self {
        TensorCacheConfig {
            min_offload_numel: 1 << 20,
            dedup: true,
            forwarding: true,
            cancel_forwarded_stores: true,
            adaptive: true,
            prefetch: true,
            prefetch_depth: 2,
            prefetch_group_modules: 0,
            coalesce_segment_bytes: 0,
            bwd_fwd_ratio: 2.0,
            profile_guided: false,
            recovery: RecoveryPolicy::default(),
            max_io_retries: 2,
        }
    }
}

impl TensorCacheConfig {
    /// A configuration suitable for functional tests: offloads even tiny
    /// tensors so small models exercise the full path.
    pub fn offload_everything() -> TensorCacheConfig {
        TensorCacheConfig {
            min_offload_numel: 0,
            ..TensorCacheConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_threshold() {
        let c = TensorCacheConfig::default();
        assert_eq!(c.min_offload_numel, 1 << 20);
        assert!(c.dedup && c.forwarding && c.prefetch && c.adaptive);
        assert!(!c.profile_guided, "cost-model placement is opt-in");
        assert_eq!(c.bwd_fwd_ratio, 2.0);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(PlacementStrategy::Keep.to_string(), "keep");
        assert_eq!(PlacementStrategy::Offload.to_string(), "offload");
        assert_eq!(PlacementStrategy::Recompute.to_string(), "recompute");
    }

    #[test]
    fn io_pipeline_knobs_default_off() {
        let c = TensorCacheConfig::default();
        assert_eq!(c.coalesce_segment_bytes, 0, "coalescing is opt-in");
        assert_eq!(c.prefetch_group_modules, 0, "group prefetch is opt-in");
        assert_eq!(c, TensorCacheConfig::default(), "defaults are stable");
    }

    #[test]
    fn recovery_defaults_to_keep_resident() {
        let c = TensorCacheConfig::default();
        assert_eq!(c.recovery, RecoveryPolicy::KeepResident);
        assert_eq!(c.max_io_retries, 2);
        assert_eq!(RecoveryPolicy::FailStep.to_string(), "fail-step");
        assert_eq!(
            RecoveryPolicy::FallbackTarget.to_string(),
            "fallback-target"
        );
    }
}
