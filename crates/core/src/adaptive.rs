//! Adaptive offloading (paper Section 3.3.3, Figure 8).
//!
//! Offloading tensors that sit *after* the memory peak does not lower the
//! peak — it only delays memory reclaim. The adaptive algorithm profiles
//! one step to learn each module's forward compute time and offload
//! volume, then picks the last module `m` whose offloads (and its own
//! reload) can finish before module `m`'s backward begins, given the
//! measured write bandwidth. Modules after `m` keep their activations in
//! GPU memory. The backward pass is assumed to take `bwd_fwd_ratio`
//! (default 2×) the forward time.

use crate::costmodel::{CostModel, TierPlan};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Profile of one module (leaf scope) collected during the profiling
/// step — the per-node annotations of the paper's Figure 8 tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleProfile {
    /// Module path, e.g. `"model/layer2/mlp"`.
    pub path: String,
    /// Bytes this module's activations transfer when offloaded.
    pub offload_bytes: u64,
    /// Forward computation time of the module, seconds.
    pub fwd_secs: f64,
    /// Observed store-transfer time of the module's offloads, seconds
    /// (link occupancy, as priced by the I/O engine).
    #[serde(default)]
    pub store_secs: f64,
    /// Observed load-transfer time of the module's reloads, seconds.
    #[serde(default)]
    pub load_secs: f64,
}

/// Whole-step profile (the root annotations of Figure 8).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StepProfile {
    /// Modules in forward order.
    pub modules: Vec<ModuleProfile>,
    /// Total forward-propagation time, seconds.
    pub fwd_total_secs: f64,
    /// Total bytes the forward pass offloaded.
    pub fwd_io_bytes: u64,
    /// Time the write direction was busy during forward, seconds.
    pub fwd_io_secs: f64,
}

impl StepProfile {
    /// Measured forward write bandwidth, bytes/s (used as the budget when
    /// the caller does not supply the channel's rated bandwidth).
    pub fn measured_write_bps(&self) -> f64 {
        if self.fwd_io_secs > 0.0 {
            self.fwd_io_bytes as f64 / self.fwd_io_secs
        } else {
            f64::INFINITY
        }
    }
}

/// The planner's decision: which module paths keep their activations in
/// GPU memory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdaptivePlan {
    /// Module paths whose activations are *not* offloaded.
    pub keep_paths: HashSet<String>,
    /// Diagnostic: required bandwidth for each candidate cutoff, in
    /// forward order (`required[m]` = bandwidth needed if `m` were the
    /// last module to offload).
    pub required_bps: Vec<f64>,
    /// Index of the chosen last-offloaded module, if any module is
    /// offloaded at all.
    pub last_offloaded: Option<usize>,
}

impl AdaptivePlan {
    /// A plan that offloads every module except the last (the default
    /// before profiling, matching Figure 4 ④ where the final module's
    /// activations stay resident).
    pub fn keep_last_only(module_paths: &[String]) -> AdaptivePlan {
        let mut keep = HashSet::new();
        if let Some(last) = module_paths.last() {
            keep.insert(last.clone());
        }
        AdaptivePlan {
            keep_paths: keep,
            required_bps: Vec::new(),
            last_offloaded: module_paths.len().checked_sub(2),
        }
    }

    /// Decides the cutoff from a step profile.
    ///
    /// For each candidate `m`, the data that must be transferred by the
    /// time module `m`'s backward begins is every earlier module's
    /// offload plus module `m`'s offload *and* reload; the deadline is
    /// the end of forward plus `bwd_fwd_ratio ×` the forward time of all
    /// modules after `m`. The largest `m` whose required bandwidth fits
    /// within `write_bps` wins; later modules are kept. The final module
    /// is always kept.
    ///
    /// # Panics
    /// Panics if `write_bps` is not positive.
    pub fn decide(profile: &StepProfile, write_bps: f64, bwd_fwd_ratio: f64) -> AdaptivePlan {
        assert!(write_bps > 0.0, "write bandwidth must be positive");
        let n = profile.modules.len();
        if n == 0 {
            return AdaptivePlan::default();
        }
        let total_fwd: f64 = profile
            .fwd_total_secs
            .max(profile.modules.iter().map(|m| m.fwd_secs).sum::<f64>());
        // Suffix forward times: time of modules strictly after m.
        let mut suffix = vec![0.0f64; n + 1];
        for m in (0..n).rev() {
            suffix[m] = suffix[m + 1] + profile.modules[m].fwd_secs;
        }
        let mut required = Vec::with_capacity(n);
        let mut prefix_bytes = 0u64;
        for m in 0..n {
            prefix_bytes += profile.modules[m].offload_bytes;
            // Offloads of modules ≤ m, plus module m's reload.
            let data = prefix_bytes + profile.modules[m].offload_bytes;
            let deadline = total_fwd + bwd_fwd_ratio * suffix[m + 1];
            required.push(if deadline > 0.0 {
                data as f64 / deadline
            } else {
                f64::INFINITY
            });
        }
        // Largest feasible cutoff, excluding the final module (always
        // kept).
        let mut last_offloaded = None;
        for m in (0..n.saturating_sub(1)).rev() {
            if required[m] <= write_bps {
                last_offloaded = Some(m);
                break;
            }
        }
        let mut keep_paths: HashSet<String> = match last_offloaded {
            Some(m) => profile.modules[m + 1..]
                .iter()
                .map(|mp| mp.path.clone())
                .collect(),
            None => profile.modules.iter().map(|mp| mp.path.clone()).collect(),
        };
        keep_paths.insert(profile.modules[n - 1].path.clone());
        AdaptivePlan {
            keep_paths,
            required_bps: required,
            last_offloaded,
        }
    }

    /// Decides the cutoff from a step profile using the placement
    /// [`CostModel`] instead of a raw bandwidth figure — the paper's ROK
    /// machinery fed by the same critical-path model the tier planner
    /// scores with.
    ///
    /// Two refinements over [`AdaptivePlan::decide`]:
    ///
    /// 1. The bandwidth budget is [`CostModel::effective_write_bps`] of
    ///    the *planned* byte split — with a shared write bus this is
    ///    strictly less than the parallel link sum the raw path assumes.
    /// 2. A stage-barrier trim: backward cannot begin until the forward
    ///    stage's stores drain (see [`crate::TensorCache::drain_stores`]),
    ///    so tail modules are kept resident until the planned drain hides
    ///    inside the forward pass — offload as much as the bus can
    ///    actually absorb, and no more.
    pub fn decide_with_cost(
        profile: &StepProfile,
        cost: &CostModel,
        plan: &TierPlan,
        bwd_fwd_ratio: f64,
    ) -> AdaptivePlan {
        let n = profile.modules.len();
        if n == 0 || cost.tiers().is_empty() {
            return AdaptivePlan::default();
        }
        // Per-module tier index under the plan; unplanned modules take
        // the front-first fallback the stack itself would apply.
        let fallback = cost.front_first_assignment(profile);
        let module_tier: Vec<Option<usize>> = profile
            .modules
            .iter()
            .zip(&fallback)
            .map(|(m, fb)| {
                plan.preferred(&m.path)
                    .and_then(|tid| cost.tier_index(tid))
                    .or(*fb)
            })
            .collect();
        let mut split = cost.split_for(profile, &module_tier);
        let budget = cost.effective_write_bps(&split);
        let mut out = AdaptivePlan::decide(profile, budget, bwd_fwd_ratio);
        // The split priced every module; drop the ones decide() kept.
        let offloaded_through = out.last_offloaded.map(|m| m + 1).unwrap_or(0);
        for (tier, module) in module_tier
            .iter()
            .zip(&profile.modules)
            .skip(offloaded_through)
        {
            if let Some(i) = *tier {
                split[i] = split[i].saturating_sub(module.offload_bytes);
            }
        }
        let total_fwd = profile
            .fwd_total_secs
            .max(profile.modules.iter().map(|m| m.fwd_secs).sum::<f64>());
        let t0 = profile.modules.first().map(|m| m.fwd_secs).unwrap_or(0.0);
        while let Some(m) = out.last_offloaded {
            if t0 + cost.store_drain_secs(&split) <= total_fwd {
                break;
            }
            out.keep_paths.insert(profile.modules[m].path.clone());
            if let Some(i) = module_tier[m] {
                split[i] = split[i].saturating_sub(profile.modules[m].offload_bytes);
            }
            out.last_offloaded = m.checked_sub(1);
        }
        out
    }

    /// Whether the module at `path` (or any of its ancestors) is kept.
    pub fn keeps(&self, path: &str) -> bool {
        if self.keep_paths.contains(path) {
            return true;
        }
        // A kept module keeps everything nested inside it.
        self.keep_paths
            .iter()
            .any(|k| path.starts_with(k.as_str()) && path.as_bytes().get(k.len()) == Some(&b'/'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mods: &[(&str, u64, f64)], fwd_total: f64) -> StepProfile {
        StepProfile {
            modules: mods
                .iter()
                .map(|(p, b, t)| ModuleProfile {
                    path: (*p).into(),
                    offload_bytes: *b,
                    fwd_secs: *t,
                    store_secs: 0.0,
                    load_secs: 0.0,
                })
                .collect(),
            fwd_total_secs: fwd_total,
            fwd_io_bytes: mods.iter().map(|m| m.1).sum(),
            fwd_io_secs: 0.0,
        }
    }

    #[test]
    fn ample_bandwidth_offloads_all_but_last() {
        let p = profile(&[("l0", 100, 1.0), ("l1", 100, 1.0), ("l2", 100, 1.0)], 3.0);
        let plan = AdaptivePlan::decide(&p, 1e12, 2.0);
        assert_eq!(plan.last_offloaded, Some(1));
        assert!(plan.keeps("l2"));
        assert!(!plan.keeps("l0"));
        assert!(!plan.keeps("l1"));
    }

    #[test]
    fn scarce_bandwidth_keeps_a_longer_tail() {
        // Each module produces 1 GB in 1 s; bandwidth 0.5 GB/s. With 4
        // modules: m=2 requires (3+1) GB by t = 4 + 2*1 = 6 s -> 0.67
        // GB/s (too much); m=1 requires 3 GB by 4+2*2=8 s -> 0.375 GB/s
        // (fits). So modules 2,3 are kept.
        let gb = 1_000_000_000u64;
        let p = profile(
            &[
                ("l0", gb, 1.0),
                ("l1", gb, 1.0),
                ("l2", gb, 1.0),
                ("l3", gb, 1.0),
            ],
            4.0,
        );
        let plan = AdaptivePlan::decide(&p, 0.5e9, 2.0);
        assert_eq!(plan.last_offloaded, Some(1));
        assert!(plan.keeps("l2") && plan.keeps("l3"));
        assert!(!plan.keeps("l0") && !plan.keeps("l1"));
    }

    #[test]
    fn hopeless_bandwidth_keeps_everything() {
        let p = profile(&[("l0", 1 << 30, 0.001), ("l1", 1 << 30, 0.001)], 0.002);
        let plan = AdaptivePlan::decide(&p, 1.0, 2.0);
        assert_eq!(plan.last_offloaded, None);
        assert!(plan.keeps("l0") && plan.keeps("l1"));
    }

    #[test]
    fn final_module_is_always_kept() {
        let p = profile(&[("l0", 10, 1.0), ("l1", 10, 1.0)], 2.0);
        let plan = AdaptivePlan::decide(&p, 1e12, 2.0);
        assert!(plan.keeps("l1"));
    }

    #[test]
    fn required_bandwidth_is_monotone_for_uniform_modules() {
        // With identical modules, later cutoffs need strictly more
        // bandwidth (more data, less time).
        let p = profile(
            &[
                ("a", 100, 1.0),
                ("b", 100, 1.0),
                ("c", 100, 1.0),
                ("d", 100, 1.0),
            ],
            4.0,
        );
        let plan = AdaptivePlan::decide(&p, 1e12, 2.0);
        for w in plan.required_bps.windows(2) {
            assert!(w[0] < w[1], "{:?}", plan.required_bps);
        }
    }

    #[test]
    fn keeps_matches_nested_paths() {
        let mut plan = AdaptivePlan::default();
        plan.keep_paths.insert("model/l3".into());
        assert!(plan.keeps("model/l3"));
        assert!(plan.keeps("model/l3/mlp"));
        assert!(!plan.keeps("model/l30"));
        assert!(!plan.keeps("model/l2"));
    }

    #[test]
    fn keep_last_only_default() {
        let paths = vec!["l0".to_string(), "l1".into(), "l2".into()];
        let plan = AdaptivePlan::keep_last_only(&paths);
        assert!(plan.keeps("l2"));
        assert!(!plan.keeps("l0"));
        assert_eq!(plan.last_offloaded, Some(1));
    }

    #[test]
    fn cost_model_budget_is_bus_aware() {
        use crate::io::{IoEngine, TierLink};
        use crate::target::CpuTarget;
        use crate::tier::{Tier, TierStack};
        use ssdtrain_simhw::SimClock;
        use std::sync::Arc;

        // Two 1 GB/s links behind a 1 GB/s bus: the raw planner would
        // budget 2 GB/s and offload everything; the cost model knows the
        // bus serialises the stores and keeps a longer tail.
        let io = IoEngine::tiered_with_bus(
            SimClock::new(),
            vec![
                TierLink::new("dram", 1e9, 1e9),
                TierLink::new("ssd", 1e9, 1e9),
            ],
            1e9,
        );
        let stack = TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(1 << 40)), 0),
            Tier::new("ssd", Arc::new(CpuTarget::new(1 << 40)), 1),
        ]);
        let cost = CostModel::from_parts(&io, &stack);
        let gb = 1_000_000_000u64;
        let p = profile(
            &[
                ("l0", gb, 0.25),
                ("l1", gb, 0.25),
                ("l2", gb, 0.25),
                ("l3", gb, 0.25),
            ],
            1.0,
        );
        let plan = cost.plan(&p, 2.0);
        let raw = AdaptivePlan::decide(&p, io.write_bps(), 2.0);
        let guided = AdaptivePlan::decide_with_cost(&p, &cost, &plan, 2.0);
        // Raw 2 GB/s budget: m=1 needs 3 GB by 2 s → 1.5 GB/s, feasible.
        assert_eq!(raw.last_offloaded, Some(1), "raw budget offloads freely");
        assert!(
            guided.last_offloaded < raw.last_offloaded,
            "bus-aware budget keeps a longer tail: {:?} vs {:?}",
            guided.last_offloaded,
            raw.last_offloaded
        );
    }

    #[test]
    fn stage_barrier_trim_hides_the_drain() {
        use crate::io::IoEngine;
        use crate::target::CpuTarget;
        use crate::tier::TierStack;
        use ssdtrain_simhw::SimClock;
        use std::sync::Arc;

        // One 1 GB/s link; 4 modules × 0.3 GB in 1 s of forward. The
        // deadline criterion alone offloads l0..l2 (0.9 GB), but that
        // drains at t0 + 0.9 = 1.15 s > 1 s; trimming l2 leaves 0.6 GB,
        // which hides (0.25 + 0.6 ≤ 1.0).
        let io = IoEngine::new(SimClock::new(), 1e9, 1e9);
        let stack = TierStack::single(Arc::new(CpuTarget::new(1 << 40)));
        let cost = CostModel::from_parts(&io, &stack);
        let mb = 300_000_000u64;
        let p = profile(
            &[
                ("l0", mb, 0.25),
                ("l1", mb, 0.25),
                ("l2", mb, 0.25),
                ("l3", mb, 0.25),
            ],
            1.0,
        );
        let plan = cost.plan(&p, 2.0);
        let guided = AdaptivePlan::decide_with_cost(&p, &cost, &plan, 2.0);
        assert_eq!(guided.last_offloaded, Some(1));
        assert!(guided.keeps("l2") && guided.keeps("l3"));
        assert!(!guided.keeps("l1"));
    }

    #[test]
    fn figure8_style_tree_cutoff() {
        // A miniature of the paper's Figure 8: attention and MLP blocks
        // with distinct sizes; verify the planner pauses offloading at
        // the documented point when bandwidth only covers the early
        // blocks.
        let mb = 1_000_000u64;
        let p = profile(
            &[
                ("l0/attn", 60 * mb, 0.010),
                ("l0/mlp", 90 * mb, 0.012),
                ("l1/attn", 60 * mb, 0.010),
                ("l1/mlp", 90 * mb, 0.012),
            ],
            0.044,
        );
        // Generous budget: everything but the tail module offloads.
        let generous = AdaptivePlan::decide(&p, 10e9, 2.0);
        assert_eq!(generous.last_offloaded, Some(2));
        // Tight budget: required[2] = (60+90+60+60)MB / (0.044+2*0.012)
        // ≈ 3.97 GB/s; with 3 GB/s we fall back to m=1 (210MB / 0.088 ≈
        // 2.4 GB/s).
        let tight = AdaptivePlan::decide(&p, 3e9, 2.0);
        assert_eq!(tight.last_offloaded, Some(1));
        assert!(tight.keeps("l1/attn") && tight.keeps("l1/mlp"));
    }
}
