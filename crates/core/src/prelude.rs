//! Everything a typical offloading program needs, in one import.
//!
//! Consolidates the cross-crate re-exports that sessions, examples and
//! tests previously imported piecemeal: the cache layer from this crate,
//! the observability layer from `ssdtrain-trace`, and the hardware model
//! from `ssdtrain-simhw`. The crate root re-exports this module
//! wholesale, so `ssdtrain::TensorCache` and
//! `ssdtrain::prelude::TensorCache` are the same item.
//!
//! ```
//! use ssdtrain::prelude::*;
//!
//! let clock = SimClock::new();
//! let io = IoEngine::new(clock, 1e9, 1e9);
//! let sink = TraceSink::enabled();
//! io.set_trace(sink.clone());
//! io.submit_load(1_000_000);
//! assert!(!sink.is_empty());
//! ```

pub use crate::adaptive::{AdaptivePlan, ModuleProfile, StepProfile};
pub use crate::cache::{StageHint, StageScope, StateSlot, TensorCache};
pub use crate::coalesce::{CoalesceCounts, SealedSegment, SegmentEntry, WriteCoalescer};
pub use crate::config::{PlacementStrategy, RecoveryPolicy, TensorCacheConfig};
pub use crate::costmodel::{CostModel, TierCost, TierPlan};
pub use crate::error::OffloadError;
pub use crate::fault::FaultyTarget;
pub use crate::io::{IoEngine, TierLink};
pub use crate::placement::{KeepReason, OffloadClass, Placement, PlacementPolicy, PlacementQuery};
pub use crate::stats::{ClassCounters, OffloadStats};
pub use crate::target::{BatchItem, CpuTarget, OffloadTarget, SsdTarget};
pub use crate::tier::{Tier, TierCounters, TierId, TierPlacement, TierRole, TierSpec, TierStack};

pub use ssdtrain_trace::{
    chrome_trace_json, text_summary, ArgValue, EventKind, HistogramSummary, LinkTraceBridge,
    MemoryTraceBridge, MetricValue, MetricsRegistry, TraceCategory, TraceEvent, TraceSink,
};

pub use ssdtrain_simhw::{
    ArenaStats, BufferArena, Channel, FaultKind, FaultLog, FaultPlan, FaultTrigger, FootprintPoint,
    GpuMemory, GpuSpec, MemoryReport, PeakObserver, PinnedSlab, SimClock, SimTime, SystemConfig,
    TransferObserver, WearMeter,
};
