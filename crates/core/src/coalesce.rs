//! Write coalescer: merges small tensor stores into large sequential
//! segments before they reach the [`crate::IoEngine`] queues.
//!
//! The paper's SSD write path stays dense because activations leave the
//! GPU as large sequential writes; a store job per tensor re-introduces
//! exactly the per-operation overheads (submission cost, FTL mapping
//! churn, partial erase-block programs) the design engineers away. The
//! coalescer sits between `TensorCache::pack` and the per-tier store
//! queues: packed tensors are *staged* into the open segment of their
//! placement tier, and when the segment reaches the configured size it
//! *seals* — one I/O job, one device write operation
//! ([`crate::OffloadTarget::write_batch`]) — while the per-segment index
//! keeps every member's identity for loads, recovery and tier
//! accounting.
//!
//! Invariants (pinned by the proptest suite), per tier and per
//! [`OffloadClass`]:
//!
//! * **conservation** — `staged == sealed + evicted + open`: every
//!   staged byte is in exactly one of the sealed segments, the evicted
//!   set (members consumed before their segment filled, served from
//!   memory like a forwarding hit), or the still-open segment.
//! * **identity** — a sealed segment's entries sum to its byte total,
//!   and a record id appears in at most one open or sealed segment.
//!
//! The coalescer is a passive data structure: the cache drives staging,
//! eviction and sealing, owns the sealed-segment lifecycle (submit →
//! commit / recover), and holds the lock. Disabled (`segment_bytes ==
//! 0`) it stages nothing and the cache takes the classic
//! one-job-per-tensor path.

use crate::placement::OffloadClass;
use crate::tier::TierId;
use std::collections::HashMap;

/// One member of a segment: a staged record and its payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// The cache-internal record id of the staged tensor.
    pub record: u64,
    /// Payload bytes the record contributes to the segment.
    pub bytes: u64,
    /// Traffic class the bytes are accounted under.
    pub class: OffloadClass,
}

/// A sealed segment, ready for one batched store: the per-segment index
/// that keeps member identity through the coalesced path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSegment {
    /// Monotonic segment id (unique per coalescer).
    pub id: u64,
    /// The tier the whole segment lands on.
    pub tier: TierId,
    /// Members in staging order.
    pub entries: Vec<SegmentEntry>,
}

impl SealedSegment {
    /// Sum of the members' payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }
}

/// Byte and segment counters kept per tier, per class, and globally.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoalesceCounts {
    /// Bytes ever staged into segments.
    pub staged_bytes: u64,
    /// Bytes sealed into submitted segments.
    pub sealed_bytes: u64,
    /// Bytes evicted from open segments before sealing.
    pub evicted_bytes: u64,
    /// Segments sealed.
    pub segments: u64,
    /// Members carried by sealed segments.
    pub entries_sealed: u64,
}

#[derive(Debug, Default)]
struct OpenSegment {
    entries: Vec<SegmentEntry>,
    bytes: u64,
}

/// The staging buffer between pack and the store queues (see module
/// docs). One open segment per tier; sealing is driven by the cache at
/// the size threshold, at stage-exit drains, and at flush.
#[derive(Debug)]
pub struct WriteCoalescer {
    segment_bytes: u64,
    next_id: u64,
    open: HashMap<TierId, OpenSegment>,
    total: CoalesceCounts,
    by_tier: HashMap<TierId, CoalesceCounts>,
    by_class: HashMap<usize, CoalesceCounts>,
}

impl WriteCoalescer {
    /// A coalescer sealing segments at `segment_bytes` (0 = disabled).
    pub fn new(segment_bytes: u64) -> WriteCoalescer {
        WriteCoalescer {
            segment_bytes,
            next_id: 0,
            open: HashMap::new(),
            total: CoalesceCounts::default(),
            by_tier: HashMap::new(),
            by_class: HashMap::new(),
        }
    }

    /// Whether staging is active (`segment_bytes > 0`).
    pub fn enabled(&self) -> bool {
        self.segment_bytes > 0
    }

    /// The configured segment size in bytes.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Stages a packed record into its tier's open segment. Returns the
    /// sealed segment when this staging filled it to the threshold.
    /// Disabled coalescers stage nothing and return `None` — the caller
    /// must check [`WriteCoalescer::enabled`] and fall back to the
    /// per-tensor path.
    pub fn stage(
        &mut self,
        tier: TierId,
        record: u64,
        bytes: u64,
        class: OffloadClass,
    ) -> Option<SealedSegment> {
        if !self.enabled() {
            return None;
        }
        let open = self.open.entry(tier).or_default();
        open.entries.push(SegmentEntry {
            record,
            bytes,
            class,
        });
        open.bytes += bytes;
        self.total.staged_bytes += bytes;
        self.by_tier.entry(tier).or_default().staged_bytes += bytes;
        self.by_class.entry(class.index()).or_default().staged_bytes += bytes;
        if open.bytes >= self.segment_bytes {
            self.seal_tier(tier)
        } else {
            None
        }
    }

    /// Removes a staged record from its tier's open segment (the record
    /// was consumed, forwarded or released before the segment filled).
    /// Returns its entry, or `None` when the record is not staged there.
    pub fn evict(&mut self, tier: TierId, record: u64) -> Option<SegmentEntry> {
        let open = self.open.get_mut(&tier)?;
        let pos = open.entries.iter().position(|e| e.record == record)?;
        let entry = open.entries.remove(pos);
        open.bytes -= entry.bytes;
        self.total.evicted_bytes += entry.bytes;
        self.by_tier.entry(tier).or_default().evicted_bytes += entry.bytes;
        self.by_class
            .entry(entry.class.index())
            .or_default()
            .evicted_bytes += entry.bytes;
        Some(entry)
    }

    /// Seals the tier's open segment regardless of fill level (stage
    /// exits and flushes submit partial segments so no staged byte
    /// outlives the forward pass). `None` when nothing is staged there.
    pub fn seal_tier(&mut self, tier: TierId) -> Option<SealedSegment> {
        let open = self.open.get_mut(&tier)?;
        if open.entries.is_empty() {
            return None;
        }
        let entries = std::mem::take(&mut open.entries);
        let bytes = std::mem::replace(&mut open.bytes, 0);
        let id = self.next_id;
        self.next_id += 1;
        self.total.sealed_bytes += bytes;
        self.total.segments += 1;
        self.total.entries_sealed += entries.len() as u64;
        {
            let t = self.by_tier.entry(tier).or_default();
            t.sealed_bytes += bytes;
            t.segments += 1;
            t.entries_sealed += entries.len() as u64;
        }
        for e in &entries {
            let c = self.by_class.entry(e.class.index()).or_default();
            c.sealed_bytes += e.bytes;
            c.entries_sealed += 1;
        }
        Some(SealedSegment { id, tier, entries })
    }

    /// Seals every non-empty open segment, in tier order.
    pub fn seal_all(&mut self) -> Vec<SealedSegment> {
        let mut tiers: Vec<TierId> = self
            .open
            .iter()
            .filter(|(_, o)| !o.entries.is_empty())
            .map(|(t, _)| *t)
            .collect();
        tiers.sort();
        let mut out = Vec::with_capacity(tiers.len());
        for tier in tiers {
            if let Some(seg) = self.seal_tier(tier) {
                out.push(seg);
            }
        }
        out
    }

    /// Bytes currently staged in the tier's open segment.
    pub fn open_bytes(&self, tier: TierId) -> u64 {
        self.open.get(&tier).map(|o| o.bytes).unwrap_or(0)
    }

    /// Bytes staged across every open segment.
    pub fn total_open_bytes(&self) -> u64 {
        self.open.values().map(|o| o.bytes).sum()
    }

    /// Whether `record` is staged in the tier's open segment.
    pub fn is_staged(&self, tier: TierId, record: u64) -> bool {
        self.open
            .get(&tier)
            .is_some_and(|o| o.entries.iter().any(|e| e.record == record))
    }

    /// Global conservation counters.
    pub fn counts(&self) -> CoalesceCounts {
        self.total
    }

    /// Conservation counters for one tier.
    pub fn tier_counts(&self, tier: TierId) -> CoalesceCounts {
        self.by_tier.get(&tier).copied().unwrap_or_default()
    }

    /// Conservation counters for one class.
    pub fn class_counts(&self, class: OffloadClass) -> CoalesceCounts {
        self.by_class
            .get(&class.index())
            .copied()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::CpuTarget;
    use crate::tier::TierStack;
    use std::sync::Arc;

    fn tier0() -> TierId {
        TierStack::single(Arc::new(CpuTarget::new(1 << 20))).tier_ids()[0]
    }

    fn two_tiers() -> (TierId, TierId) {
        let stack = TierStack::new(vec![
            crate::tier::Tier::new("a", Arc::new(CpuTarget::new(1 << 20)), 0),
            crate::tier::Tier::new("b", Arc::new(CpuTarget::new(1 << 20)), 1),
        ]);
        let ids = stack.tier_ids();
        (ids[0], ids[1])
    }

    #[test]
    fn disabled_coalescer_stages_nothing() {
        let mut c = WriteCoalescer::new(0);
        assert!(!c.enabled());
        assert!(c.stage(tier0(), 1, 100, OffloadClass::Activation).is_none());
        assert_eq!(c.total_open_bytes(), 0);
        assert_eq!(c.counts(), CoalesceCounts::default());
    }

    #[test]
    fn segment_seals_at_the_size_threshold() {
        let t = tier0();
        let mut c = WriteCoalescer::new(100);
        assert!(c.stage(t, 1, 40, OffloadClass::Activation).is_none());
        assert!(c.stage(t, 2, 40, OffloadClass::Activation).is_none());
        assert_eq!(c.open_bytes(t), 80);
        let seg = c.stage(t, 3, 40, OffloadClass::Activation).expect("seal");
        assert_eq!(seg.total_bytes(), 120);
        assert_eq!(seg.entries.len(), 3);
        assert_eq!(seg.entries[2].record, 3);
        assert_eq!(c.open_bytes(t), 0);
        let counts = c.counts();
        assert_eq!(counts.staged_bytes, 120);
        assert_eq!(counts.sealed_bytes, 120);
        assert_eq!(counts.segments, 1);
    }

    #[test]
    fn tiers_keep_separate_open_segments() {
        let (a, b) = two_tiers();
        let mut c = WriteCoalescer::new(1000);
        c.stage(a, 1, 100, OffloadClass::Activation);
        c.stage(b, 2, 200, OffloadClass::Gradient);
        assert_eq!(c.open_bytes(a), 100);
        assert_eq!(c.open_bytes(b), 200);
        let sealed = c.seal_all();
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed[0].tier, a, "seal_all is tier-ordered");
        assert_eq!(c.tier_counts(a).sealed_bytes, 100);
        assert_eq!(c.tier_counts(b).sealed_bytes, 200);
        assert_eq!(c.class_counts(OffloadClass::Gradient).sealed_bytes, 200);
    }

    #[test]
    fn eviction_keeps_conservation() {
        let t = tier0();
        let mut c = WriteCoalescer::new(1000);
        c.stage(t, 1, 100, OffloadClass::Activation);
        c.stage(t, 2, 50, OffloadClass::Activation);
        assert!(c.is_staged(t, 2));
        let e = c.evict(t, 2).expect("staged");
        assert_eq!(e.bytes, 50);
        assert!(!c.is_staged(t, 2));
        assert!(c.evict(t, 2).is_none(), "double eviction is inert");
        let seg = c.seal_tier(t).expect("one member left");
        assert_eq!(seg.total_bytes(), 100);
        let counts = c.counts();
        assert_eq!(
            counts.staged_bytes,
            counts.sealed_bytes + counts.evicted_bytes + c.total_open_bytes()
        );
    }

    #[test]
    fn segment_ids_are_unique_and_monotonic() {
        let t = tier0();
        let mut c = WriteCoalescer::new(10);
        let a = c.stage(t, 1, 10, OffloadClass::Activation).expect("seal");
        let b = c.stage(t, 2, 10, OffloadClass::Activation).expect("seal");
        assert!(b.id > a.id);
    }

    #[test]
    fn sealing_an_empty_tier_returns_none() {
        let t = tier0();
        let mut c = WriteCoalescer::new(10);
        assert!(c.seal_tier(t).is_none());
        assert!(c.seal_all().is_empty());
    }
}
