//! The tensor cache (paper Section 3.2, Algorithms 1–2, Figure 6).
//!
//! The cache registers itself as the autograd engine's saved-tensor hooks
//! and module hooks. When an operator saves an activation, `pack`
//! decides — parameter? small? kept module? backward phase? — and either
//! leaves the tensor on the graph or replaces it with an opaque record id
//! while a store job streams the bytes to the offload target. `unpack`
//! resolves ids back, *forwarding* tensors whose store is still in
//! flight and blocking (simulated-clock stall) on reloads that have not
//! arrived — that stall is exactly the exposed I/O latency the paper
//! evaluates (Q1).
//!
//! Memory-accounting subtlety: an offloaded tensor's GPU memory is freed
//! *when its store completes*, which is in the simulated future at the
//! time we learn it. The cache therefore defers the release and stamps
//! the free event with the store's completion time
//! ([`ssdtrain_simhw::GpuMemory::with_time`]); a tensor that ends up
//! forwarded was never actually released, and no event is emitted.

use crate::adaptive::{AdaptivePlan, ModuleProfile, StepProfile};
use crate::coalesce::{SegmentEntry, WriteCoalescer};
use crate::config::{RecoveryPolicy, TensorCacheConfig};
use crate::costmodel::{CostModel, TierPlan};
use crate::error::OffloadError;
use crate::id::{storage_stamp, tensor_key, TensorKey};
use crate::io::{IoEngine, JobId};
use crate::placement::{OffloadClass, Placement, PlacementPolicy, PlacementQuery};
use crate::stats::OffloadStats;
use crate::target::{BatchItem, OffloadTarget};
use crate::tier::{TierId, TierStack};
use parking_lot::Mutex;
use ssdtrain_autograd::{ModuleHooks, Packed, Phase, SavedTensorHooks, ScopeInfo};
use ssdtrain_simhw::{BufferArena, GpuMemory, PinnedSlab, SimTime};
use ssdtrain_tensor::Tensor;
use ssdtrain_trace::{ArgValue, TraceCategory, TraceSink};
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::Arc;

type RecordId = u64;

/// The stage kinds the scheduler announces to the cache (the `cmd`
/// argument of the paper's `tc.set_stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageHint {
    /// A micro-batch is being loaded (switches the cache's records).
    MicroBatchLoad(usize),
    /// A forward pass.
    Forward,
    /// A backward pass.
    Backward,
    /// A communication/boundary stage (gradient reduction etc.).
    Communication,
    /// The optimizer update.
    Optimizer,
}

impl StageHint {
    /// The span name a [`StageScope`] emits for this stage.
    pub fn trace_label(self) -> String {
        match self {
            StageHint::MicroBatchLoad(mb) => format!("stage.load_mb{mb}"),
            StageHint::Forward => "stage.forward".to_owned(),
            StageHint::Backward => "stage.backward".to_owned(),
            StageHint::Communication => "stage.comm".to_owned(),
            StageHint::Optimizer => "stage.optimizer".to_owned(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum RecState {
    /// In GPU memory (loaded back or forwarded).
    Resident,
    /// Staged in the write coalescer's open segment for its tier; no
    /// store job exists yet and the data is still resident. Consuming a
    /// staged record evicts it from the segment — forwarding that never
    /// even queued a job.
    Staged,
    /// Store in flight; data still resident (release deferred).
    Storing { job: JobId },
    /// On the offload target; GPU memory already freed (at the store's
    /// completion time).
    Offloaded,
    /// Reload in flight; resident from `ready` on.
    Loading { ready: SimTime },
}

struct Record {
    key: TensorKey,
    tensor: Tensor,
    bytes: u64,
    state: RecState,
    scopes: HashSet<u64>,
    /// The tier holding (or about to hold) the bytes; demotion moves it.
    tier: TierId,
    /// The sealed segment carrying this record's store, when the bytes
    /// ride a coalesced job rather than a per-tensor one.
    seg: Option<u64>,
    /// Pinned staging slab the bytes occupy while a store is staged or
    /// in flight; released exactly once when the staging retires.
    slab: Option<PinnedSlab>,
}

/// A sealed segment whose store job is in flight: the per-segment index
/// that lets commit and recovery keep member identity (one failed
/// segment degrades per [`RecoveryPolicy`], not per tensor).
struct SegmentState {
    job: JobId,
    tier: TierId,
    entries: Vec<SegmentEntry>,
}

/// How `unpack` pre-handles a record on the coalesced path, decided
/// under a short borrow so whole-segment actions can run on `Inner`.
enum CoalescedHit {
    /// Staged member consumed before its segment sealed: evicted from
    /// the open segment — forwarding that never queued a job.
    Evicted {
        tier: TierId,
        bytes: u64,
        slab: Option<PinnedSlab>,
        tensor: Tensor,
    },
    /// Member of a sealed segment consumed inside the forwarding window:
    /// forwarded *without* cancelling — the segment job carries its
    /// siblings and commit will skip this resident member.
    Forwarded {
        bytes: u64,
        slab: Option<PinnedSlab>,
        tensor: Tensor,
    },
    /// The member's segment must commit before the reload can begin.
    Commit { seg: u64, end: SimTime },
}

/// Opaque handle to an offloaded state tensor (a gradient or optimizer
/// state slot created by [`TensorCache::offload_state`]). Unlike
/// activation records, state slots survive step boundaries: optimizer
/// state lives across steps and is reloaded by the next step's
/// optimizer jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateSlot(u64);

/// A non-activation offload record (gradient / optimizer state). The
/// bytes are written to their tier eagerly at submit time (there is no
/// deferred commit: state has no forwarding path), and the slot tracks
/// when the simulated store drains so a load in the same step can never
/// observe the bytes before they physically landed.
struct StateRecord {
    key: TensorKey,
    tensor: Tensor,
    bytes: u64,
    class: OffloadClass,
    tier: TierId,
    /// Bytes are on the tier (false after a load restored them).
    offloaded: bool,
    /// Simulated time the store drains; loads this step clamp to it.
    /// Reset to zero at step boundaries (the optimizer-stage drain
    /// barrier guarantees every store landed before the step ended).
    avail: SimTime,
}

#[derive(Default)]
struct ScopeMeta {
    path: String,
    records: Vec<RecordId>,
    enter: SimTime,
    fwd_secs: f64,
    offload_bytes: u64,
    /// Simulated link occupancy of this module's store jobs.
    store_secs: f64,
    /// Simulated link occupancy of this module's reloads.
    load_secs: f64,
}

struct Inner {
    records: HashMap<RecordId, Record>,
    by_key: HashMap<TensorKey, RecordId>,
    next_id: RecordId,
    param_stamps: HashSet<u64>,
    /// Innermost-first stack of open forward scopes (seq ids).
    stack: Vec<u64>,
    scopes: HashMap<u64, ScopeMeta>,
    /// Forward order of scope seqs per micro-batch.
    forward_order: HashMap<usize, Vec<u64>>,
    current_mb: usize,
    phase: Phase,
    profiling: bool,
    fwd_start: SimTime,
    fwd_secs: f64,
    /// Sealed segments whose coalesced store jobs are in flight,
    /// committed (written through [`crate::TierStack::write_segment`])
    /// or recovered as a unit; removal marks the segment committed.
    segments: HashMap<u64, SegmentState>,
    /// Groups already prefetched this step (group double-buffering must
    /// never load a group twice).
    groups_loaded: HashSet<(usize, usize)>,
    /// Pinned staging slab per in-flight prefetch group; released when
    /// backward consumption moves past the group.
    group_slabs: HashMap<(usize, usize), PinnedSlab>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            records: HashMap::new(),
            by_key: HashMap::new(),
            next_id: 0,
            param_stamps: HashSet::new(),
            stack: Vec::new(),
            scopes: HashMap::new(),
            forward_order: HashMap::new(),
            current_mb: 0,
            phase: Phase::Forward,
            profiling: false,
            fwd_start: SimTime::ZERO,
            fwd_secs: 0.0,
            segments: HashMap::new(),
            groups_loaded: HashSet::new(),
            group_slabs: HashMap::new(),
        }
    }
}

/// The SSDTrain tensor cache.
///
/// One instance serves one (simulated) GPU. Register it on a graph with
/// [`TensorCache::install`].
///
/// # Failure handling
///
/// Offload-target failures (a vanished spill directory, an exhausted
/// host pool, an injected fault) do **not** panic: store failures are
/// recovered per the configured [`RecoveryPolicy`] — the tensor stays
/// resident, optionally re-routed to a fallback target — and load
/// failures are retried and then surfaced as a structured
/// [`OffloadError`] via [`TensorCache::take_error`] at the end of the
/// step. The only remaining hook panic is unpacking an opaque value
/// after its records were released, which is an engine-integration bug
/// rather than a recoverable condition.
///
/// ```
/// use ssdtrain::{CpuTarget, IoEngine, TensorCache, TensorCacheConfig};
/// use ssdtrain_autograd::{ops, Graph, Var};
/// use ssdtrain_simhw::{GpuMemory, SimClock};
/// use ssdtrain_tensor::{Device, Tensor};
/// use std::sync::Arc;
///
/// let clock = SimClock::new();
/// let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 30));
/// let dev = Device::cpu();
/// dev.set_tracker(mem.clone());
/// let io = IoEngine::new(clock, 1e9, 1e9);
/// let cache = TensorCache::new(
///     TensorCacheConfig::offload_everything(),
///     Arc::new(CpuTarget::new(1 << 30)),
///     io,
///     mem,
/// );
/// let graph = Graph::new(&dev, 1);
/// cache.install(&graph);
/// // Saved activations now flow through the cache; training is
/// // numerically unchanged while their memory is reclaimable.
/// let w = Var::new("w", Tensor::from_vec(vec![2.0], [1, 1], &dev));
/// let x = graph.constant(Tensor::from_vec(vec![3.0], [1, 1], &dev));
/// let y = ops::matmul(&graph, &x, &graph.leaf(&w));
/// let loss = ops::mean_all(&graph, &y);
/// graph.backward(&loss);
/// assert_eq!(w.grad().unwrap().to_vec(), vec![3.0]);
/// assert!(cache.stats().store_jobs > 0);
/// ```
pub struct TensorCache {
    config: TensorCacheConfig,
    placement: PlacementPolicy,
    tiers: Arc<TierStack>,
    io: IoEngine,
    mem: Arc<GpuMemory>,
    /// Pinned host staging arena every offloaded byte passes through —
    /// store staging slabs and group-prefetch landing buffers alike.
    arena: BufferArena,
    /// The write coalescer between `pack` and the per-tier store queues
    /// (inert when [`TensorCacheConfig::coalesce_segment_bytes`] is 0).
    /// Lock order: `inner` before `coalescer`, never the reverse.
    coalescer: Mutex<WriteCoalescer>,
    inner: Mutex<Inner>,
    /// State slots (gradients, optimizer state); separate from `inner`
    /// because they survive the per-step record flush.
    state_slots: Mutex<HashMap<u64, StateRecord>>,
    next_state_slot: Mutex<u64>,
    stats: Mutex<OffloadStats>,
    plan: Mutex<AdaptivePlan>,
    tier_plan: Mutex<TierPlan>,
    /// Per-link stage-barrier stall time this step (see
    /// [`TensorCache::drain_stores`]); indexed by I/O link.
    link_stalls: Mutex<Vec<f64>>,
    pending_error: Mutex<Option<OffloadError>>,
    trace: Mutex<TraceSink>,
}

impl TensorCache {
    /// Creates a cache over a single offload target and its I/O engine —
    /// the flat shape, expressed as a one-tier [`TierStack`]
    /// ([`TierStack::single`]); behavior is identical to the pre-tier
    /// design.
    pub fn new(
        config: TensorCacheConfig,
        target: Arc<dyn OffloadTarget>,
        io: IoEngine,
        mem: Arc<GpuMemory>,
    ) -> Arc<TensorCache> {
        TensorCache::with_tiers(config, Arc::new(TierStack::single(target)), io, mem)
    }

    /// Creates a cache over an ordered tier stack; each tier's transfers
    /// are priced on its [`crate::Tier::link`] of `io` (so build the
    /// engine with [`IoEngine::tiered`] and matching link indices).
    pub fn with_tiers(
        config: TensorCacheConfig,
        tiers: Arc<TierStack>,
        io: IoEngine,
        mem: Arc<GpuMemory>,
    ) -> Arc<TensorCache> {
        let placement = PlacementPolicy::from_config(&config);
        let coalescer = Mutex::new(WriteCoalescer::new(config.coalesce_segment_bytes));
        Arc::new(TensorCache {
            config,
            placement,
            tiers,
            io,
            mem,
            arena: BufferArena::new(),
            coalescer,
            inner: Mutex::new(Inner::default()),
            state_slots: Mutex::new(HashMap::new()),
            next_state_slot: Mutex::new(0),
            stats: Mutex::new(OffloadStats::default()),
            plan: Mutex::new(AdaptivePlan::default()),
            tier_plan: Mutex::new(TierPlan::default()),
            link_stalls: Mutex::new(Vec::new()),
            pending_error: Mutex::new(None),
            trace: Mutex::new(TraceSink::disabled()),
        })
    }

    /// Routes this cache's tensor-lifecycle events into `sink` and wires
    /// the shared [`IoEngine`] to the same sink, so stores, loads,
    /// prefetches, dedup hits, forwarding, stalls, stage spans and
    /// recovery actions all land on one timeline.
    pub fn set_trace(&self, sink: TraceSink) {
        self.io.set_trace(sink.clone());
        *self.trace.lock() = sink;
    }

    fn trace(&self) -> TraceSink {
        self.trace.lock().clone()
    }

    /// Installs the secondary target [`RecoveryPolicy::FallbackTarget`]
    /// re-routes refused stores to (typically a [`crate::CpuTarget`]
    /// pinned pool) — expressed as a demotion-only tier appended to the
    /// stack; its loads travel the front tier's simulated link, exactly
    /// as the flat design priced fallback reads.
    pub fn set_fallback_target(&self, target: Arc<dyn OffloadTarget>) {
        self.tiers.push_demotion(target);
    }

    /// Takes the first offload failure recovery could not absorb this
    /// step, if any. The training loop calls this at the step boundary;
    /// under [`RecoveryPolicy::FailStep`] a store failure lands here,
    /// and a permanently failed load lands here under every policy.
    pub fn take_error(&self) -> Option<OffloadError> {
        self.pending_error.lock().take()
    }

    /// Registers this cache's hook pairs on `graph` — the
    /// `configure_tensor_cache` of the paper's Algorithm 1.
    pub fn install(self: &Arc<Self>, graph: &ssdtrain_autograd::Graph) {
        graph.set_saved_tensor_hooks(self.clone());
        graph.add_module_hooks(self.clone());
    }

    /// Excludes a parameter (any view of its storage) from offloading
    /// (Algorithm 1 lines 3–4). Linear-layer weight transposes share the
    /// storage stamp, so they are covered automatically (Section 3.3.1).
    pub fn register_parameter(&self, t: &Tensor) {
        let stamp = storage_stamp(t);
        self.inner.lock().param_stamps.insert(stamp);
    }

    /// The I/O engine (for end-of-step queries).
    pub fn io(&self) -> &IoEngine {
        &self.io
    }

    /// The tier stack (placement capacities, per-tier counters).
    pub fn tiers(&self) -> &Arc<TierStack> {
        &self.tiers
    }

    /// The front tier's offload target (the single device in flat
    /// configurations).
    pub fn target(&self) -> Arc<dyn OffloadTarget> {
        self.tiers.front_device()
    }

    /// Snapshot of this step's statistics, per-tier counters included.
    /// Tier timing (stage-barrier stalls, link busy time) is overlaid
    /// from the I/O engine so the snapshot and the trace agree.
    pub fn stats(&self) -> OffloadStats {
        let mut stats = self.stats.lock().clone();
        let arena = self.arena.stats();
        stats.arena_acquired_bytes = arena.acquired_bytes;
        stats.arena_released_bytes = arena.released_bytes;
        stats.arena_high_water_bytes = arena.high_water_bytes;
        stats.arena_footprint_bytes = arena.footprint_bytes;
        stats.arena_slab_reuses = arena.slab_reuses;
        stats.tiers = self.tiers.counters();
        let stalls = self.link_stalls.lock();
        for (tier, counters) in self.tiers.tier_ids().iter().zip(stats.tiers.iter_mut()) {
            let link = self.tiers.link(*tier);
            counters.stall_secs = stalls.get(link).copied().unwrap_or(0.0);
            counters.write_busy_secs = self.io.write_busy_secs_on(link);
            counters.read_busy_secs = self.io.read_busy_secs_on(link);
        }
        stats
    }

    /// A [`CostModel`] over this cache's links and tiers as currently
    /// priced — what the planner and the capacity bench use to price
    /// state load/store jobs without replaying them.
    pub fn cost_model(&self) -> CostModel {
        CostModel::from_parts(&self.io, &self.tiers)
            .with_segment_bytes(self.config.coalesce_segment_bytes)
    }

    /// The pinned staging arena (high-water and reuse telemetry).
    pub fn arena(&self) -> &BufferArena {
        &self.arena
    }

    /// The write coalescer's conservation counters for this step.
    pub fn coalesce_counts(&self) -> crate::coalesce::CoalesceCounts {
        self.coalescer.lock().counts()
    }

    /// The adaptive plan currently applied.
    pub fn plan(&self) -> AdaptivePlan {
        self.plan.lock().clone()
    }

    /// Overrides the adaptive plan (tests, ablations).
    pub fn set_plan(&self, plan: AdaptivePlan) {
        *self.plan.lock() = plan;
    }

    /// The profile-guided tier plan currently applied (empty until a
    /// profiling step ran with [`TensorCacheConfig::profile_guided`]).
    pub fn tier_plan(&self) -> TierPlan {
        self.tier_plan.lock().clone()
    }

    // ------------------------------------------------------------------
    // Step lifecycle and scheduler hints (Algorithm 1)
    // ------------------------------------------------------------------

    /// Starts a measured step: clears per-step structures, the I/O job
    /// queues and statistics. Call after the runtime's clock was reset.
    /// Under [`TensorCacheConfig::profile_guided`] the previous step's
    /// observed timings re-derive the tier plan first, so placement
    /// tracks the workload step over step.
    pub fn begin_step(&self) {
        self.replan_from_last_step();
        self.flush();
        // Leftover records were just flushed against the old queues; new
        // jobs must not queue behind the previous step's transfers.
        self.io.reset();
        // The flush sealed and committed every staged byte; a fresh step
        // starts with fresh conservation counters and a high-water mark
        // tracking only the slabs that survived the boundary.
        *self.coalescer.lock() = WriteCoalescer::new(self.config.coalesce_segment_bytes);
        self.arena.begin_step();
        let mut inner = self.inner.lock();
        inner.stack.clear();
        inner.scopes.clear();
        inner.forward_order.clear();
        inner.segments.clear();
        inner.groups_loaded.clear();
        inner.phase = Phase::Forward;
        inner.fwd_start = self.io.clock().now();
        inner.fwd_secs = 0.0;
        *self.stats.lock() = OffloadStats::default();
        self.link_stalls.lock().clear();
        self.tiers.reset_counters();
        // State stores from the previous step drained at its optimizer
        // barrier; on the fresh clock they are available immediately.
        for slot in self.state_slots.lock().values_mut() {
            slot.avail = SimTime::ZERO;
        }
        // Failures during the flush above belong to the step that
        // already reported; the new step starts clean.
        *self.pending_error.lock() = None;
    }

    /// Enables profiling for the next step: every eligible tensor is
    /// offloaded regardless of plan, and per-module transfer sizes and
    /// compute times are collected (Section 3.3.3).
    pub fn begin_profile_step(&self) {
        self.begin_step();
        self.inner.lock().profiling = true;
    }

    /// Ends a profiling step: builds the [`StepProfile`], derives the
    /// adaptive plan (when enabled) and applies it to subsequent steps.
    /// Under [`TensorCacheConfig::profile_guided`] the same profile also
    /// drives the [`CostModel`] tier planner.
    pub fn end_profile_step(&self) -> (StepProfile, AdaptivePlan) {
        let profile = {
            let mut inner = self.inner.lock();
            inner.profiling = false;
            if inner.fwd_secs == 0.0 {
                // Called at the forward/backward boundary before the
                // phase switch was observed.
                inner.fwd_secs = self.io.clock().now().since(inner.fwd_start);
            }
            self.build_profile(&inner)
        };
        let plan = self.replan(&profile);
        (profile, plan)
    }

    /// Builds a [`StepProfile`] from the current step's scope metadata
    /// (shared by [`TensorCache::end_profile_step`] and the between-step
    /// re-plan).
    fn build_profile(&self, inner: &Inner) -> StepProfile {
        let fwd_total_secs = if inner.fwd_secs == 0.0 {
            self.io.clock().now().since(inner.fwd_start)
        } else {
            inner.fwd_secs
        };
        let order = inner
            .forward_order
            .get(&inner.current_mb)
            .cloned()
            .unwrap_or_default();
        let modules: Vec<ModuleProfile> = order
            .iter()
            .filter_map(|seq| {
                let meta = inner.scopes.get(seq)?;
                if meta.records.is_empty() {
                    return None;
                }
                Some(ModuleProfile {
                    path: meta.path.clone(),
                    offload_bytes: meta.offload_bytes,
                    fwd_secs: meta.fwd_secs,
                    store_secs: meta.store_secs,
                    load_secs: meta.load_secs,
                })
            })
            .collect();
        StepProfile {
            modules,
            fwd_total_secs,
            fwd_io_bytes: self.io.bytes_written(),
            fwd_io_secs: self.io.write_busy_secs(),
        }
    }

    /// Derives and applies the plans for `profile`: the adaptive ROK
    /// cutoff always, plus the cost-model tier assignment when
    /// [`TensorCacheConfig::profile_guided`] is set. The adaptive budget
    /// is the [`CostModel`]'s effective write bandwidth of the byte
    /// split the stack would actually produce — bus-serialised when a
    /// shared write bus is configured — rather than a single link's
    /// rated figure.
    fn replan(&self, profile: &StepProfile) -> AdaptivePlan {
        let plan = if self.config.adaptive {
            let cost = CostModel::from_parts(&self.io, &self.tiers)
                .with_segment_bytes(self.config.coalesce_segment_bytes);
            if self.config.profile_guided && !cost.tiers().is_empty() {
                let tier_plan = cost.plan(profile, self.config.bwd_fwd_ratio);
                let plan = AdaptivePlan::decide_with_cost(
                    profile,
                    &cost,
                    &tier_plan,
                    self.config.bwd_fwd_ratio,
                );
                self.trace().instant_with(
                    TraceCategory::Tier,
                    "tier.replan",
                    self.io.clock().now(),
                    vec![
                        (
                            "modeled_step_secs",
                            ArgValue::F64(tier_plan.modeled_step_secs),
                        ),
                        (
                            "baseline_step_secs",
                            ArgValue::F64(tier_plan.baseline_step_secs),
                        ),
                    ],
                );
                *self.tier_plan.lock() = tier_plan;
                plan
            } else {
                let split = cost.split_for(profile, &cost.front_first_assignment(profile));
                AdaptivePlan::decide(
                    profile,
                    cost.effective_write_bps(&split),
                    self.config.bwd_fwd_ratio,
                )
            }
        } else {
            let paths: Vec<String> = profile.modules.iter().map(|m| m.path.clone()).collect();
            AdaptivePlan::keep_last_only(&paths)
        };
        *self.plan.lock() = plan.clone();
        plan
    }

    /// Re-derives the plans from the step that just finished (scope
    /// metadata still holds its observed timings when this runs at the
    /// top of [`TensorCache::begin_step`]). Only active under
    /// [`TensorCacheConfig::profile_guided`]; a profiling step keeps its
    /// explicit [`TensorCache::end_profile_step`] flow.
    fn replan_from_last_step(&self) {
        if !(self.config.adaptive && self.config.profile_guided) {
            return;
        }
        let profile = {
            let inner = self.inner.lock();
            if inner.profiling || inner.scopes.is_empty() {
                return;
            }
            self.build_profile(&inner)
        };
        if profile.modules.is_empty() {
            return;
        }
        self.replan(&profile);
    }

    /// Collects the records of up to `depth` record-holding modules at or
    /// before position `pos` in the forward order, nearest first.
    fn records_before(&self, mb: usize, pos: usize, depth: usize) -> Vec<RecordId> {
        let inner = self.inner.lock();
        let Some(order) = inner.forward_order.get(&mb) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut taken = 0;
        for seq in order[..pos.min(order.len())].iter().rev() {
            let Some(meta) = inner.scopes.get(seq) else {
                continue;
            };
            if meta.records.is_empty() {
                continue;
            }
            out.extend_from_slice(&meta.records);
            taken += 1;
            if taken >= depth {
                break;
            }
        }
        out
    }

    /// The record ids and total bytes of prefetch group `gidx` — the
    /// modules at forward-order positions `[gidx·G, (gidx+1)·G)` for
    /// `G = prefetch_group_modules`.
    fn group_records(&self, inner: &Inner, mb: usize, gidx: usize) -> (Vec<RecordId>, u64) {
        let Some(order) = inner.forward_order.get(&mb) else {
            return (Vec::new(), 0);
        };
        let g = self.config.prefetch_group_modules.max(1);
        let start = gidx.saturating_mul(g);
        if start >= order.len() {
            return (Vec::new(), 0);
        }
        let end = start.saturating_add(g).min(order.len());
        let mut ids = Vec::new();
        let mut bytes = 0u64;
        for seq in &order[start..end] {
            let Some(meta) = inner.scopes.get(seq) else {
                continue;
            };
            for id in &meta.records {
                if !ids.contains(id) {
                    ids.push(*id);
                    bytes += inner.records.get(id).map_or(0, |r| r.bytes);
                }
            }
        }
        (ids, bytes)
    }

    /// Issues prefetch group `gidx` of micro-batch `mb` onto a fresh
    /// arena staging slab — at most once per step (the double buffer
    /// must never load a group twice; re-requests are no-ops).
    fn prefetch_group(&self, mb: usize, gidx: usize) {
        if !self.config.prefetch {
            return;
        }
        let (ids, bytes) = {
            let mut inner = self.inner.lock();
            if !inner.groups_loaded.insert((mb, gidx)) {
                return;
            }
            let (ids, bytes) = self.group_records(&inner, mb, gidx);
            if ids.is_empty() {
                return;
            }
            if let Some(slab) = self.arena.acquire(bytes) {
                self.trace().instant_bytes(
                    TraceCategory::Arena,
                    "arena.acquire",
                    self.io.clock().now(),
                    bytes,
                );
                inner.group_slabs.insert((mb, gidx), slab);
            }
            (ids, bytes)
        };
        let mut stats = self.stats.lock();
        stats.prefetch_groups += 1;
        stats.prefetch_group_bytes += bytes;
        drop(stats);
        self.trace().instant_with(
            TraceCategory::Prefetch,
            "prefetch.group",
            self.io.clock().now(),
            vec![
                ("group", ArgValue::U64(gidx as u64)),
                ("bytes", ArgValue::U64(bytes)),
            ],
        );
        self.prefetch_records(&ids);
    }

    /// Enters `stage` and returns an RAII guard covering it: the
    /// Algorithm 1 line 9 entry actions (`tc.set_stage(cmd)`) run now,
    /// the line 15 exit actions (`tc.stage_done(cmd)`, draining I/O
    /// after backward) run when the guard drops, and the guard emits the
    /// stage's span into the trace. This replaces the manual
    /// `set_stage`/`stage_done` call pairs, which could be forgotten or
    /// mismatched.
    ///
    /// ```
    /// # use ssdtrain::{CpuTarget, IoEngine, StageHint, TensorCache, TensorCacheConfig};
    /// # use ssdtrain_simhw::{GpuMemory, SimClock};
    /// # use std::sync::Arc;
    /// # let clock = SimClock::new();
    /// # let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 30));
    /// # let io = IoEngine::new(clock, 1e9, 1e9);
    /// # let cache = TensorCache::new(
    /// #     TensorCacheConfig::offload_everything(),
    /// #     Arc::new(CpuTarget::new(1 << 30)),
    /// #     io,
    /// #     mem,
    /// # );
    /// {
    ///     let scope = cache.stage_scope(StageHint::Forward);
    ///     scope.announce_next(StageHint::Backward); // prefetch overlaps the tail
    ///     // ... run the stage ...
    /// } // exit actions + trace span happen here
    /// ```
    pub fn stage_scope(&self, stage: StageHint) -> StageScope<'_> {
        self.enter_stage(stage);
        StageScope {
            cache: self,
            stage,
            enter: self.io.clock().now(),
        }
    }

    fn enter_stage(&self, stage: StageHint) {
        if let StageHint::MicroBatchLoad(mb) = stage {
            self.set_micro_batch(mb);
        }
    }

    fn exit_stage(&self, stage: StageHint) {
        if matches!(stage, StageHint::Backward) {
            self.wait_io();
        }
        self.drain_stores();
        if matches!(stage, StageHint::Optimizer) {
            self.emit_tier_io();
        }
    }

    /// Stage-barrier store drain: the next stage cannot begin while
    /// store queues are still writing, so the simulated clock advances
    /// to the last submitted store's completion. The exposed time — the
    /// drain minus whatever compute already covered it — lands in
    /// [`OffloadStats::store_stall_secs`] and, per link, in the tier
    /// counters' `stall_secs`, with a `tier.drain.<link>` span
    /// ([`TraceCategory::Tier`]) over each link's exposed window. A
    /// fully-overlapped stage drains for free: no time passes, no span
    /// or counter is emitted, and the step is byte-identical to the
    /// pre-barrier behaviour.
    ///
    /// This is what makes backends with different [`crate::TierLink`]
    /// speeds report different step times: the write direction's
    /// critical-path contribution is `max(compute, store drain)` per
    /// stage instead of compute alone.
    pub fn drain_stores(&self) {
        // A stage barrier flushes the pipeline: partial segments seal
        // and submit before the drain is measured, so no staged byte
        // outlives the stage that produced it.
        self.seal_open_segments();
        let now0 = self.io.clock().now();
        let links = self.io.link_count();
        let mut drains = Vec::with_capacity(links);
        let mut latest = now0;
        for link in 0..links {
            let d = self.io.writes_drain_at_on(link);
            latest = latest.max(d);
            drains.push(d);
        }
        let stall = self.io.clock().advance_to(latest);
        if stall <= 0.0 {
            return;
        }
        self.stats.lock().store_stall_secs += stall;
        let trace = self.trace();
        let mut per_link = self.link_stalls.lock();
        if per_link.len() < links {
            per_link.resize(links, 0.0);
        }
        for (link, drain) in drains.iter().enumerate() {
            let exposed = drain.since(now0);
            if exposed > 0.0 {
                per_link[link] += exposed;
                trace.span(
                    TraceCategory::Tier,
                    // ssdtrain-lint: allow(no-alloc-hot-loop): per-link drain
                    // label, bounded by link count, built only on a stall
                    format!("tier.drain.{}", self.io.link_name(link)),
                    now0,
                    *drain,
                );
            }
        }
    }

    /// Emits one `tier.io.<name>` instant per tier and one
    /// `class.io.<label>` instant per [`OffloadClass`] that saw traffic
    /// this step (at the optimizer stage's exit, i.e. the end of the
    /// step), carrying byte counts — the trace-side mirror of the
    /// [`OffloadStats`] tier and class counters.
    fn emit_tier_io(&self) {
        let trace = self.trace();
        if !trace.is_enabled() {
            return;
        }
        let now = self.io.clock().now();
        for c in self.stats.lock().classes.iter() {
            if c.offloaded_bytes == 0 && c.reloaded_bytes == 0 {
                continue;
            }
            trace.instant_with(
                TraceCategory::Tier,
                // ssdtrain-lint: allow(no-alloc-hot-loop): once-per-step class
                // summary, bounded by class count, gated on trace enablement
                format!("class.io.{}", c.class),
                now,
                // ssdtrain-lint: allow(no-alloc-hot-loop): once-per-step class
                // summary, bounded by class count, gated on trace enablement
                vec![
                    ("offloaded_bytes", ArgValue::U64(c.offloaded_bytes)),
                    ("reloaded_bytes", ArgValue::U64(c.reloaded_bytes)),
                    ("stores", ArgValue::U64(c.stores)),
                    ("loads", ArgValue::U64(c.loads)),
                ],
            );
        }
        let stalls = self.link_stalls.lock().clone();
        for (tier, counters) in self.tiers.tier_ids().iter().zip(self.tiers.counters()) {
            if counters.bytes_written == 0 && counters.bytes_read == 0 {
                continue;
            }
            let link = self.tiers.link(*tier);
            trace.instant_with(
                TraceCategory::Tier,
                // ssdtrain-lint: allow(no-alloc-hot-loop): once-per-step tier
                // summary, bounded by tier count, gated on trace enablement
                format!("tier.io.{}", counters.name),
                now,
                // ssdtrain-lint: allow(no-alloc-hot-loop): once-per-step tier
                // summary, bounded by tier count, gated on trace enablement
                vec![
                    ("bytes_written", ArgValue::U64(counters.bytes_written)),
                    ("bytes_read", ArgValue::U64(counters.bytes_read)),
                    (
                        "write_busy_secs",
                        ArgValue::F64(self.io.write_busy_secs_on(link)),
                    ),
                    (
                        "read_busy_secs",
                        ArgValue::F64(self.io.read_busy_secs_on(link)),
                    ),
                    (
                        "stall_secs",
                        ArgValue::F64(stalls.get(link).copied().unwrap_or(0.0)),
                    ),
                ],
            );
        }
    }

    /// Scheduler hint (Algorithm 1 line 13): the step is about to switch
    /// to backward propagation — prefetch the tail modules' activations.
    /// In group mode ([`TensorCacheConfig::prefetch_group_modules`]) the
    /// last `prefetch_depth` groups are issued instead, filling both
    /// halves of the double buffer before backward starts consuming.
    pub fn prefetch_last_module(&self) {
        let (mb, len) = {
            let inner = self.inner.lock();
            let mb = inner.current_mb;
            let len = inner.forward_order.get(&mb).map_or(0, |o| o.len());
            (mb, len)
        };
        let g = self.config.prefetch_group_modules;
        if self.config.prefetch && g > 0 {
            if len == 0 {
                return;
            }
            let last = (len - 1) / g;
            for d in 0..self.config.prefetch_depth.max(1) {
                if d > last {
                    break;
                }
                // ssdtrain-lint: allow(no-alloc-hot-loop): issuing a group
                // prefetch submits the group's reloads — the data path
                self.prefetch_group(mb, last - d);
            }
            return;
        }
        let ids = self.records_before(mb, len, self.config.prefetch_depth.max(1));
        self.prefetch_records(&ids);
    }

    /// Scheduler hint (Algorithm 1 line 15): block until in-flight
    /// reloads complete.
    pub fn wait_io(&self) {
        let latest = {
            let inner = self.inner.lock();
            inner
                .records
                .values()
                .filter_map(|r| match r.state {
                    RecState::Loading { ready } => Some(ready),
                    _ => None,
                })
                .fold(SimTime::ZERO, SimTime::max)
        };
        let stall = self.io.clock().advance_to(latest);
        self.stats.lock().stall_secs += stall;
        if stall > 0.0 {
            self.trace().span(
                TraceCategory::Stall,
                "stall.drain",
                latest.plus_secs(-stall),
                latest,
            );
        }
    }

    /// Micro-batch switch hint (Figure 4 ③): subsequent scopes belong to
    /// micro-batch `mb` and the cache switches to its record set.
    pub fn set_micro_batch(&self, mb: usize) {
        self.inner.lock().current_mb = mb;
    }

    /// Releases every remaining record (end of step). Stores still in
    /// flight commit at their completion times.
    pub fn flush(&self) {
        self.seal_open_segments();
        let ids: Vec<RecordId> = self.inner.lock().records.keys().copied().collect();
        for id in ids {
            // ssdtrain-lint: allow(no-alloc-hot-loop): releasing a record
            // serialises and writes its payload — the buffer is the offload
            self.release_record(id);
        }
        let mut inner = self.inner.lock();
        inner.by_key.clear();
        inner.records.clear();
        inner.segments.clear();
        inner.groups_loaded.clear();
        let slabs: Vec<PinnedSlab> = inner.group_slabs.drain().map(|(_, s)| s).collect();
        drop(inner);
        let now = self.io.clock().now();
        let trace = self.trace();
        for slab in slabs {
            let len = slab.len;
            if self.arena.release(slab) {
                trace.instant_bytes(TraceCategory::Arena, "arena.release", now, len);
            }
        }
    }

    // ------------------------------------------------------------------
    // State offload (gradients, optimizer state)
    // ------------------------------------------------------------------

    /// Offloads a state tensor (gradient or optimizer state) through the
    /// same placement → tier → I/O stack activations use. Returns the
    /// slot handle, or `None` when the tensor stays resident — placement
    /// keep, full tiers, or a store failure absorbed per the configured
    /// [`RecoveryPolicy`] (under [`RecoveryPolicy::FailStep`] the error
    /// additionally lands in [`TensorCache::take_error`]).
    ///
    /// The store job rides the admitting tier's [`crate::TierLink`] (and
    /// the shared write bus, when configured); the tensor's GPU memory is
    /// freed at the store's simulated completion. A same-step
    /// [`TensorCache::load_state`] can never complete before that time.
    pub fn offload_state(&self, tensor: &Tensor, class: OffloadClass) -> Option<StateSlot> {
        let query = PlacementQuery {
            class,
            is_parameter: false,
            numel: tensor.numel(),
            in_backward: false,
            module_kept: false,
        };
        if let Placement::Keep(reason) = self.placement.decide(&query) {
            if reason.counts_in_stats() {
                self.stats.lock().kept += 1;
            }
            return None;
        }
        let bytes = tensor.bytes();
        let Some(placement) = self.tiers.reserve(bytes) else {
            let mut stats = self.stats.lock();
            stats.kept += 1;
            stats.placement_kept_bytes += bytes;
            drop(stats);
            self.trace().instant_bytes(
                TraceCategory::Tier,
                "tier.full",
                self.io.clock().now(),
                bytes,
            );
            return None;
        };
        let key = tensor_key(tensor);
        let job = self
            .io
            .submit_store_to(self.tiers.link(placement.tier), bytes);
        let (start, end) = self.io.store_span(job);
        let trace = self.trace();
        trace.instant_bytes(TraceCategory::Store, "store.enqueue", start, bytes);
        // State bytes pass through the pinned arena like activations do;
        // the slab is held only across the eager write below.
        let slab = self.arena.acquire(bytes);
        if slab.is_some() {
            trace.instant_bytes(
                TraceCategory::Arena,
                "arena.acquire",
                self.io.clock().now(),
                bytes,
            );
        }
        // State has no forwarding path: the payload crosses to the tier
        // now, so recovery runs here rather than at a deferred commit.
        let data = tensor.storage().to_bytes();
        let tier = match self
            .tiers
            .write(placement.tier, &key, data.as_deref(), bytes)
        {
            Ok(()) => placement.tier,
            Err(err) => {
                self.stats.lock().store_failures += 1;
                let demoted = (self.config.recovery == RecoveryPolicy::FallbackTarget)
                    .then(|| {
                        self.tiers.demote(
                            placement.tier,
                            &key,
                            data.as_deref(),
                            bytes,
                            self.config.max_io_retries,
                        )
                    })
                    .flatten();
                match demoted {
                    Some(dest) => {
                        let mut stats = self.stats.lock();
                        stats.fallback_bytes += bytes;
                        drop(stats);
                        trace.instant_with(
                            TraceCategory::Recovery,
                            "recovery.fallback",
                            self.io.clock().now(),
                            // ssdtrain-lint: allow(no-alloc-hot-loop): recovery
                            // path only — runs after a failed store, never in
                            // the steady-state offload loop
                            vec![
                                ("bytes", ArgValue::U64(bytes)),
                                ("target", ArgValue::from(self.tiers.name(dest))),
                            ],
                        );
                        dest
                    }
                    None => {
                        // Keep the tensor resident; the reservation and
                        // the dead store job are both returned.
                        self.retire_slab(slab);
                        self.tiers.remove(placement.tier, &key, bytes);
                        let _ = self.io.try_cancel_store(job, self.io.clock().now());
                        let mut stats = self.stats.lock();
                        stats.kept_resident_bytes += bytes;
                        drop(stats);
                        trace.instant_bytes(
                            TraceCategory::Recovery,
                            "recovery.keep_resident",
                            self.io.clock().now(),
                            bytes,
                        );
                        if self.config.recovery == RecoveryPolicy::FailStep {
                            trace.instant(
                                TraceCategory::Recovery,
                                "recovery.fail_step",
                                self.io.clock().now(),
                            );
                            let mut pending = self.pending_error.lock();
                            if pending.is_none() {
                                *pending = Some(OffloadError::Store {
                                    key,
                                    bytes,
                                    target: self.tiers.name(placement.tier),
                                    source: err,
                                });
                            }
                        }
                        return None;
                    }
                }
            }
        };
        self.mem.with_time(end, || tensor.storage().release());
        self.retire_slab(slab);
        trace.span_bytes(TraceCategory::Store, "store", start, end, bytes);
        // Fallback bytes are counted under `fallback_bytes`, not
        // `offloaded_bytes`, exactly as the activation recovery does.
        let fell_back = tier != placement.tier;
        let mut stats = self.stats.lock();
        stats.store_jobs += 1;
        if !fell_back {
            stats.offloaded_bytes += bytes;
            if placement.spilled {
                stats.spilled_bytes += bytes;
            }
        }
        let c = stats.class_mut(class);
        c.stores += 1;
        if !fell_back {
            c.offloaded_bytes += bytes;
        }
        drop(stats);
        let id = {
            let mut next = self.next_state_slot.lock();
            let id = *next;
            *next += 1;
            id
        };
        self.state_slots.lock().insert(
            id,
            StateRecord {
                key,
                tensor: tensor.clone(),
                bytes,
                class,
                tier,
                offloaded: true,
                avail: end,
            },
        );
        Some(StateSlot(id))
    }

    /// Reloads an offloaded state slot's bytes back into its tensor and
    /// returns the simulated time the load completes. The caller decides
    /// what to do with that time — the unoverlapped optimizer stalls on
    /// it, the overlap engine compares it against the next forward's
    /// arrival. The ready time is clamped to the slot's own store drain,
    /// so state is never read before its store landed. A slot already
    /// resident returns `now`; an unknown slot returns `None`.
    pub fn load_state(&self, slot: StateSlot) -> Option<SimTime> {
        let now = self.io.clock().now();
        let mut slots = self.state_slots.lock();
        let rec = slots.get_mut(&slot.0)?;
        if !rec.offloaded {
            return Some(now);
        }
        let link = self.tiers.link(rec.tier);
        let ready = self.io.submit_load_from(link, rec.bytes).max(rec.avail);
        let (key, tier, bytes) = (rec.key.clone(), rec.tier, rec.bytes);
        let tensor = rec.tensor.clone();
        rec.offloaded = false;
        let class = rec.class;
        drop(slots);
        self.read_back(&key, tier, bytes, &tensor, ready);
        let mut stats = self.stats.lock();
        stats.reloaded_bytes += bytes;
        let c = stats.class_mut(class);
        c.reloaded_bytes += bytes;
        c.loads += 1;
        drop(stats);
        Some(ready)
    }

    /// The simulated time `slot`'s store drains (its earliest legal
    /// read), or `None` for unknown or already-resident slots.
    pub fn state_available_at(&self, slot: StateSlot) -> Option<SimTime> {
        let slots = self.state_slots.lock();
        let rec = slots.get(&slot.0)?;
        rec.offloaded.then_some(rec.avail)
    }

    /// Drops a state slot, returning its tier reservation. Bytes still
    /// offloaded are abandoned on the tier (the optimizer overwrites
    /// state wholesale each step; there is nothing to read back).
    pub fn release_state(&self, slot: StateSlot) {
        let Some(rec) = self.state_slots.lock().remove(&slot.0) else {
            return;
        };
        self.tiers.remove(rec.tier, &rec.key, rec.bytes);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn innermost_kept(&self, inner: &Inner) -> bool {
        if inner.profiling {
            return false;
        }
        let Some(seq) = inner.stack.last() else {
            return false;
        };
        let path = &inner.scopes[seq].path;
        self.plan.lock().keeps(path)
    }

    /// Releases a staging slab back to the arena, emitting the
    /// `arena.release` instant the Arena trace lane is built from.
    fn retire_slab(&self, slab: Option<PinnedSlab>) {
        let Some(slab) = slab else { return };
        let len = slab.len;
        if self.arena.release(slab) {
            self.trace().instant_bytes(
                TraceCategory::Arena,
                "arena.release",
                self.io.clock().now(),
                len,
            );
        }
    }

    /// Seals every open segment and submits their coalesced store jobs
    /// (stage barriers and flushes call this so no staged byte outlives
    /// the stage that produced it).
    fn seal_open_segments(&self) {
        let mut inner = self.inner.lock();
        let sealed = self.coalescer.lock().seal_all();
        for seg in sealed {
            // ssdtrain-lint: allow(no-alloc-hot-loop): sealing submits the
            // segment's store job — the data path, one call per segment
            self.seal_segment(&mut inner, seg);
        }
    }

    /// Submits one coalesced store job for a sealed segment and flips
    /// its members `Staged` → `Storing`. One segment is one job on the
    /// tier's link ([`OffloadStats::store_jobs`] counts segments, not
    /// tensors) and will be one device write operation at commit; the
    /// members' byte/class accounting stayed per-record at pack time, so
    /// the trace identity `Σstore.enqueue − Σstore.cancel − recoveries
    /// == offloaded_bytes` holds unchanged through the coalesced path.
    fn seal_segment(&self, inner: &mut Inner, seg: crate::coalesce::SealedSegment) {
        let total = seg.total_bytes();
        if total == 0 {
            return;
        }
        let link = self.tiers.link(seg.tier);
        let job = self.io.submit_store_to(link, total);
        let (start, end) = self.io.store_span(job);
        let seg_secs = end.since(start);
        for e in &seg.entries {
            let scope = {
                let Some(rec) = inner.records.get_mut(&e.record) else {
                    continue;
                };
                rec.state = RecState::Storing { job };
                rec.seg = Some(seg.id);
                rec.scopes.iter().min().copied()
            };
            // Profiling sees the segment's link occupancy distributed
            // over its members proportional to their bytes.
            if let Some(s) = scope {
                if let Some(meta) = inner.scopes.get_mut(&s) {
                    meta.store_secs += seg_secs * e.bytes as f64 / total as f64;
                }
            }
        }
        let entries = seg.entries.len() as u64;
        inner.segments.insert(
            seg.id,
            SegmentState {
                job,
                tier: seg.tier,
                entries: seg.entries,
            },
        );
        let mut stats = self.stats.lock();
        stats.store_jobs += 1;
        stats.coalesce_segments += 1;
        stats.coalesced_bytes += total;
        stats.class_mut(OffloadClass::Activation).stores += 1;
        drop(stats);
        self.trace().instant_with(
            TraceCategory::Coalesce,
            "coalesce.seal",
            self.io.clock().now(),
            // ssdtrain-lint: allow(no-alloc-hot-loop): once-per-segment
            // telemetry; segments are bounded by bytes/segment_size
            vec![
                ("bytes", ArgValue::U64(total)),
                ("entries", ArgValue::U64(entries)),
            ],
        );
    }

    /// Commits a sealed segment: one batched device write for every
    /// member still riding the job (members forwarded after sealing are
    /// skipped — their bytes never leave memory), memory freed at the
    /// job's completion time. Idempotent: removal from the segment map
    /// marks the segment committed. A failed batch write degrades the
    /// *segment* per the configured [`RecoveryPolicy`], not per tensor.
    fn commit_segment(&self, inner: &mut Inner, seg_id: u64) {
        let Some(seg) = inner.segments.remove(&seg_id) else {
            return;
        };
        let end = self.io.store_end(seg.job);
        let mut members: Vec<(TensorKey, Option<Vec<u8>>, u64, RecordId)> =
            // ssdtrain-lint: allow(no-alloc-hot-loop): assembling the batch
            // serialises the payload being offloaded — the data path
            Vec::with_capacity(seg.entries.len());
        for e in &seg.entries {
            let Some(rec) = inner.records.get_mut(&e.record) else {
                continue;
            };
            if !matches!(rec.state, RecState::Storing { job } if job == seg.job) {
                continue;
            }
            if rec.tensor.storage().strong_count() > 1 {
                // Live references outside the cache: like the per-tensor
                // commit, the tensor simply stays resident.
                rec.state = RecState::Resident;
                let slab = rec.slab.take();
                self.retire_slab(slab);
                continue;
            }
            // The real payload crosses the filesystem at commit (wall
            // time); the simulated transfer finished at `end`.
            let data = rec.tensor.storage().to_bytes();
            members.push((rec.key.clone(), data, e.bytes, e.record));
        }
        if members.is_empty() {
            return;
        }
        let items: Vec<BatchItem<'_>> = members
            .iter()
            // ssdtrain-lint: allow(no-alloc-hot-loop): borrow view over the
            // batch being written — the data path
            .map(|(k, d, b, _)| (k, d.as_deref(), *b))
            .collect();
        match self.tiers.write_segment(seg.tier, &items) {
            Ok(()) => {
                let total: u64 = members.iter().map(|(_, _, b, _)| *b).sum();
                let (start, _) = self.io.store_span(seg.job);
                for (_, _, _, id) in &members {
                    let slab = {
                        let Some(rec) = inner.records.get_mut(id) else {
                            continue;
                        };
                        self.mem.with_time(end, || rec.tensor.storage().release());
                        rec.state = RecState::Offloaded;
                        rec.slab.take()
                    };
                    self.retire_slab(slab);
                }
                self.trace()
                    .span_bytes(TraceCategory::Store, "store", start, end, total);
            }
            Err(err) => self.recover_failed_segment(inner, &seg, &members, end, err),
        }
    }

    /// Segment-level recovery: the batched write failed before any
    /// member's bytes landed ([`crate::OffloadTarget::write_batch`]
    /// unwinds partial writes), so every member is still resident and
    /// the step stays numerically exact. One failure, one policy
    /// decision — [`RecoveryPolicy::FallbackTarget`] demotes the members
    /// individually (the per-segment index keeps their identity), the
    /// keep-resident policies absorb the whole segment at once.
    fn recover_failed_segment(
        &self,
        inner: &mut Inner,
        seg: &SegmentState,
        members: &[(TensorKey, Option<Vec<u8>>, u64, RecordId)],
        end: SimTime,
        err: io::Error,
    ) {
        self.stats.lock().store_failures += 1;
        let now = self.io.clock().now();
        let trace = self.trace();
        let mut fell_back = 0u64;
        let mut kept = 0u64;
        let mut fallback_dest: Option<TierId> = None;
        for (key, data, bytes, id) in members {
            let demoted = (self.config.recovery == RecoveryPolicy::FallbackTarget)
                .then(|| {
                    // ssdtrain-lint: allow(no-alloc-hot-loop): recovery slow path — demotion rewrites the failed member on the fallback device
                    self.tiers.demote(
                        seg.tier,
                        key,
                        data.as_deref(),
                        *bytes,
                        self.config.max_io_retries,
                    )
                })
                .flatten();
            let slab = {
                let Some(rec) = inner.records.get_mut(id) else {
                    continue;
                };
                match demoted {
                    Some(dest) => {
                        self.mem.with_time(end, || rec.tensor.storage().release());
                        rec.state = RecState::Offloaded;
                        rec.tier = dest;
                        fell_back += bytes;
                        fallback_dest = Some(dest);
                    }
                    None => {
                        rec.state = RecState::Resident;
                        kept += bytes;
                    }
                }
                rec.slab.take()
            };
            self.retire_slab(slab);
        }
        if kept > 0 && fell_back == 0 {
            // Nothing from this segment is in flight any more; return
            // the dead job if it still sits in the queue.
            let _ = self.io.try_cancel_store(seg.job, now);
        }
        let mut stats = self.stats.lock();
        stats.offloaded_bytes -= fell_back + kept;
        stats.fallback_bytes += fell_back;
        stats.kept_resident_bytes += kept;
        stats.class_mut(OffloadClass::Activation).offloaded_bytes -= fell_back + kept;
        drop(stats);
        if let Some(dest) = fallback_dest {
            trace.instant_with(
                TraceCategory::Recovery,
                "recovery.fallback",
                now,
                vec![
                    ("bytes", ArgValue::U64(fell_back)),
                    ("target", ArgValue::from(self.tiers.name(dest))),
                ],
            );
        }
        if kept > 0 {
            trace.instant_bytes(TraceCategory::Recovery, "recovery.keep_resident", now, kept);
        }
        if self.config.recovery == RecoveryPolicy::FailStep {
            trace.instant(TraceCategory::Recovery, "recovery.fail_step", now);
            let mut pending = self.pending_error.lock();
            if pending.is_none() {
                if let Some((key, _, _, _)) = members.first() {
                    *pending = Some(OffloadError::Store {
                        key: key.clone(),
                        bytes: kept,
                        target: self.tiers.name(seg.tier),
                        source: err,
                    });
                }
            }
        }
    }

    /// Commits a completed store: memory freed at the store's end time.
    ///
    /// Mirrors Python garbage collection (paper Section 3.2): the memory
    /// is reclaimable only once the cache holds the *last* reference to
    /// the storage. If model code still holds the tensor (e.g. a step
    /// input reused across steps), the record simply stays resident.
    fn commit_store(&self, rec: &mut Record, job: JobId) {
        if rec.tensor.storage().strong_count() > 1 {
            rec.state = RecState::Resident;
            let slab = rec.slab.take();
            self.retire_slab(slab);
            return;
        }
        let end = self.io.store_end(job);
        // The real payload crosses the filesystem here (wall time); the
        // simulated transfer finished at `end`.
        let data = rec.tensor.storage().to_bytes();
        match self
            .tiers
            .write(rec.tier, &rec.key, data.as_deref(), rec.bytes)
        {
            Ok(()) => {
                self.mem.with_time(end, || rec.tensor.storage().release());
                rec.state = RecState::Offloaded;
                let (start, end) = self.io.store_span(job);
                self.trace()
                    .span_bytes(TraceCategory::Store, "store", start, end, rec.bytes);
            }
            Err(err) => self.recover_failed_store(rec, job, err),
        }
        // Whatever the outcome, the staging buffer's job is done.
        let slab = rec.slab.take();
        self.retire_slab(slab);
    }

    /// Recovery for a store the target refused. The payload only
    /// crosses to the target at commit time, so the tensor is still in
    /// GPU memory and every [`RecoveryPolicy`] keeps the step
    /// numerically exact — the policy decides whether the failure is
    /// absorbed, re-routed to the fallback target, or surfaced as a
    /// step error.
    fn recover_failed_store(&self, rec: &mut Record, job: JobId, err: io::Error) {
        self.stats.lock().store_failures += 1;
        if self.config.recovery == RecoveryPolicy::FallbackTarget {
            let data = rec.tensor.storage().to_bytes();
            if let Some(dest) = self.tiers.demote(
                rec.tier,
                &rec.key,
                data.as_deref(),
                rec.bytes,
                self.config.max_io_retries,
            ) {
                let end = self.io.store_end(job);
                self.mem.with_time(end, || rec.tensor.storage().release());
                rec.state = RecState::Offloaded;
                rec.tier = dest;
                let mut stats = self.stats.lock();
                stats.offloaded_bytes -= rec.bytes;
                stats.fallback_bytes += rec.bytes;
                stats.class_mut(OffloadClass::Activation).offloaded_bytes -= rec.bytes;
                drop(stats);
                self.trace().instant_with(
                    TraceCategory::Recovery,
                    "recovery.fallback",
                    self.io.clock().now(),
                    vec![
                        ("bytes", ArgValue::U64(rec.bytes)),
                        ("target", ArgValue::from(self.tiers.name(dest))),
                    ],
                );
                return;
            }
        }
        // Keep the tensor resident (also the fallback's last resort).
        // The store job is dead weight now — cancel it if it still sits
        // in the queue, reusing the forwarding machinery.
        rec.state = RecState::Resident;
        let _ = self.io.try_cancel_store(job, self.io.clock().now());
        let mut stats = self.stats.lock();
        stats.offloaded_bytes -= rec.bytes;
        stats.kept_resident_bytes += rec.bytes;
        stats.class_mut(OffloadClass::Activation).offloaded_bytes -= rec.bytes;
        drop(stats);
        self.trace().instant_bytes(
            TraceCategory::Recovery,
            "recovery.keep_resident",
            self.io.clock().now(),
            rec.bytes,
        );
        if self.config.recovery == RecoveryPolicy::FailStep {
            self.trace().instant(
                TraceCategory::Recovery,
                "recovery.fail_step",
                self.io.clock().now(),
            );
            let mut pending = self.pending_error.lock();
            if pending.is_none() {
                *pending = Some(OffloadError::Store {
                    key: rec.key.clone(),
                    bytes: rec.bytes,
                    target: self.tiers.name(rec.tier),
                    source: err,
                });
            }
        }
    }

    /// Reloads a record's bytes, retrying up to `max_io_retries` times.
    /// A load that still fails is unrecoverable — the activation is
    /// gone — so the tensor is restored to zeros to keep the graph
    /// executable and a structured error is queued; it surfaces at the
    /// step boundary under *every* policy.
    fn restore_record(&self, rec: &mut Record, ready: SimTime) {
        self.read_back(&rec.key, rec.tier, rec.bytes, &rec.tensor, ready);
    }

    /// Shared read-with-retries path for activation records and state
    /// slots: reloads `bytes` from `tier` into `tensor` (retrying up to
    /// `max_io_retries`), restoring zeros and queuing a structured
    /// [`OffloadError::Load`] when the data is permanently gone.
    fn read_back(
        &self,
        key: &TensorKey,
        tier: TierId,
        bytes: u64,
        tensor: &Tensor,
        ready: SimTime,
    ) {
        let mut attempts = 0u32;
        let data = loop {
            attempts += 1;
            match self.tiers.read(tier, key, bytes) {
                Ok(d) => break d,
                Err(err) if attempts > self.config.max_io_retries => {
                    let mut stats = self.stats.lock();
                    stats.load_retries += u64::from(attempts - 1);
                    drop(stats);
                    let mut pending = self.pending_error.lock();
                    if pending.is_none() {
                        *pending = Some(OffloadError::Load {
                            key: key.clone(),
                            bytes,
                            target: self.tiers.name(tier),
                            attempts,
                            source: err,
                        });
                    }
                    drop(pending);
                    self.trace().instant_with(
                        TraceCategory::Recovery,
                        "recovery.load_failed",
                        ready,
                        // ssdtrain-lint: allow(no-alloc-hot-loop): recovery
                        // path only — runs after `max_io_retries` failures
                        vec![
                            ("bytes", ArgValue::U64(bytes)),
                            ("attempts", ArgValue::U64(u64::from(attempts))),
                        ],
                    );
                    let numel = tensor.numel();
                    self.mem.with_time(ready, || {
                        // ssdtrain-lint: allow(no-alloc-hot-loop): recovery
                        // zero-fill after an unrecoverable load failure
                        tensor.storage().restore_numeric(vec![0.0; numel]);
                    });
                    return;
                }
                Err(_) => {}
            }
        };
        if attempts > 1 {
            self.stats.lock().load_retries += u64::from(attempts - 1);
            self.trace().instant_with(
                TraceCategory::Recovery,
                "recovery.load_retry",
                ready,
                // ssdtrain-lint: allow(no-alloc-hot-loop): retry-path
                // telemetry only; clean loads never build this vector
                vec![
                    ("bytes", ArgValue::U64(bytes)),
                    ("retries", ArgValue::U64(u64::from(attempts - 1))),
                ],
            );
        }
        self.mem.with_time(ready, || match data {
            Some(raw) => {
                let decoded = tensor.storage().decode_bytes(&raw);
                tensor.storage().restore_numeric(decoded);
            }
            None => tensor.storage().restore_symbolic(),
        });
    }

    fn prefetch_records(&self, ids: &[RecordId]) {
        if !self.config.prefetch {
            return;
        }
        let now = self.io.clock().now();
        let mut inner = self.inner.lock();
        for id in ids {
            let peek = match inner.records.get(id) {
                Some(r) => (r.state, r.seg),
                None => continue,
            };
            match peek {
                (RecState::Staged, _) => {
                    // Prefetch reached a record whose bytes are still
                    // staged: evict it from the open segment — the
                    // tensor never left memory, forwarding that never
                    // queued a job. The pack-time enqueue is balanced by
                    // a cancel so the trace byte identity holds.
                    let (tier, bytes, slab) = {
                        let Some(rec) = inner.records.get_mut(id) else {
                            continue;
                        };
                        rec.state = RecState::Resident;
                        (rec.tier, rec.bytes, rec.slab.take())
                    };
                    self.coalescer.lock().evict(tier, *id);
                    self.retire_slab(slab);
                    let mut stats = self.stats.lock();
                    stats.forwarded += 1;
                    stats.forwarded_bytes += bytes;
                    stats.cancelled_stores += 1;
                    stats.cancelled_bytes += bytes;
                    stats.offloaded_bytes -= bytes;
                    stats.coalesce_evictions += 1;
                    stats.class_mut(OffloadClass::Activation).offloaded_bytes -= bytes;
                    drop(stats);
                    let trace = self.trace();
                    trace.instant_bytes(TraceCategory::Forwarding, "forward", now, bytes);
                    trace.instant_bytes(TraceCategory::Store, "store.cancel", now, bytes);
                    trace.instant_bytes(TraceCategory::Coalesce, "coalesce.evict", now, bytes);
                    continue;
                }
                (RecState::Storing { job }, seg) => {
                    let end = self.io.store_end(job);
                    if now >= end {
                        match seg {
                            // ssdtrain-lint: allow(no-alloc-hot-loop): committing serialises the payload being offloaded — the data path, not bookkeeping
                            Some(sid) => self.commit_segment(&mut inner, sid),
                            None => {
                                let Some(rec) = inner.records.get_mut(id) else {
                                    continue;
                                };
                                // ssdtrain-lint: allow(no-alloc-hot-loop): committing serialises the payload being offloaded — the data path, not bookkeeping
                                self.commit_store(rec, job);
                            }
                        }
                        // Immediately reload below.
                    } else if seg.is_some() {
                        // Sealed member inside the forwarding window:
                        // forward *without* cancelling — the segment job
                        // carries its siblings; commit skips this member.
                        let (bytes, slab) = {
                            let Some(rec) = inner.records.get_mut(id) else {
                                continue;
                            };
                            rec.state = RecState::Resident;
                            (rec.bytes, rec.slab.take())
                        };
                        self.retire_slab(slab);
                        let mut stats = self.stats.lock();
                        stats.forwarded += 1;
                        stats.forwarded_bytes += bytes;
                        drop(stats);
                        self.trace().instant_bytes(
                            TraceCategory::Forwarding,
                            "forward",
                            now,
                            bytes,
                        );
                        continue;
                    } else {
                        // Still being stored: data forwarding at prefetch
                        // time (Section 3.3.2) — keep the in-memory
                        // reference so the store's completion never frees
                        // it, and cancel the job if it has not started.
                        let (bytes, slab) = {
                            let Some(rec) = inner.records.get_mut(id) else {
                                continue;
                            };
                            rec.state = RecState::Resident;
                            (rec.bytes, rec.slab.take())
                        };
                        self.retire_slab(slab);
                        let cancelled = self.config.cancel_forwarded_stores
                            && self.io.try_cancel_store(job, now);
                        let mut stats = self.stats.lock();
                        stats.forwarded += 1;
                        stats.forwarded_bytes += bytes;
                        if cancelled {
                            stats.cancelled_stores += 1;
                            stats.cancelled_bytes += bytes;
                            stats.offloaded_bytes -= bytes;
                            stats.store_jobs -= 1;
                            let c = stats.class_mut(OffloadClass::Activation);
                            c.offloaded_bytes -= bytes;
                            c.stores -= 1;
                        }
                        drop(stats);
                        let trace = self.trace();
                        trace.instant_bytes(TraceCategory::Forwarding, "forward", now, bytes);
                        if cancelled {
                            trace.instant_bytes(TraceCategory::Store, "store.cancel", now, bytes);
                        }
                        continue;
                    }
                }
                (RecState::Resident | RecState::Loading { .. }, _) => continue,
                (RecState::Offloaded, _) => {}
            }
            let Some(rec) = inner.records.get_mut(id) else {
                continue;
            };
            if let RecState::Offloaded = rec.state {
                self.trace().instant_bytes(
                    TraceCategory::Prefetch,
                    "prefetch.issue",
                    now,
                    rec.bytes,
                );
                let link = self.tiers.link(rec.tier);
                let busy0 = self.io.read_busy_secs_on(link);
                // ssdtrain-lint: allow(no-alloc-hot-loop): submitting the
                // reload is the data path; its bookkeeping rides the transfer
                let ready = self.io.submit_load_from(link, rec.bytes);
                let load_secs = self.io.read_busy_secs_on(link) - busy0;
                self.restore_record(rec, ready);
                rec.state = RecState::Loading { ready };
                let bytes = rec.bytes;
                let seq = rec.scopes.iter().min().copied();
                if let Some(seq) = seq {
                    if let Some(meta) = inner.scopes.get_mut(&seq) {
                        meta.load_secs += load_secs;
                    }
                }
                let mut stats = self.stats.lock();
                stats.prefetches += 1;
                stats.reloaded_bytes += bytes;
                let c = stats.class_mut(OffloadClass::Activation);
                c.reloaded_bytes += bytes;
                c.loads += 1;
            }
        }
    }

    fn release_record(&self, id: RecordId) {
        let mut inner = self.inner.lock();
        // Coalesced pre-handling, while the record is still in the map
        // (segment commit needs every member resolvable by id).
        let peek = match inner.records.get(&id) {
            Some(r) => (r.state, r.seg, r.tier),
            None => return,
        };
        match peek {
            (RecState::Staged, _, tier) => {
                // Released before its segment filled: the bytes never
                // offload. Cancel the pack-time enqueue (no forwarding —
                // nothing consumed the tensor).
                self.coalescer.lock().evict(tier, id);
                let (bytes, slab) = {
                    let Some(rec) = inner.records.get_mut(&id) else {
                        return;
                    };
                    rec.state = RecState::Resident;
                    (rec.bytes, rec.slab.take())
                };
                self.retire_slab(slab);
                let mut stats = self.stats.lock();
                stats.cancelled_stores += 1;
                stats.cancelled_bytes += bytes;
                stats.offloaded_bytes -= bytes;
                stats.coalesce_evictions += 1;
                stats.class_mut(OffloadClass::Activation).offloaded_bytes -= bytes;
                drop(stats);
                let now = self.io.clock().now();
                let trace = self.trace();
                trace.instant_bytes(TraceCategory::Store, "store.cancel", now, bytes);
                trace.instant_bytes(TraceCategory::Coalesce, "coalesce.evict", now, bytes);
            }
            (RecState::Storing { .. }, Some(sid), _) => {
                // The paper's "excessive offloading" effect on the
                // coalesced path: committing the whole segment settles
                // this member (and its siblings) before release.
                self.commit_segment(&mut inner, sid);
            }
            _ => {}
        }
        let Some(mut rec) = inner.records.remove(&id) else {
            return;
        };
        inner.by_key.remove(&rec.key);
        drop(inner);
        let now = self.io.clock().now();
        // Releasing frees memory only when the cache's reference is the
        // last one — like Python GC, a tensor the model still holds keeps
        // its memory (the storage's own drop reports the eventual free).
        let exclusive = rec.tensor.storage().strong_count() == 1;
        match rec.state {
            // Staged was evicted to Resident above; both free the bytes.
            RecState::Resident | RecState::Staged => {
                if exclusive {
                    rec.tensor.storage().release();
                }
            }
            RecState::Loading { ready } => {
                // Loaded data is reclaimed once the (simulated) load has
                // landed; releasing earlier would be double-counting.
                if exclusive {
                    self.mem
                        .with_time(ready.max(now), || rec.tensor.storage().release());
                }
            }
            RecState::Storing { job } => {
                // The paper's "excessive offloading" effect: the tensor
                // was never reused, its memory comes back only when the
                // store completes.
                self.commit_store(&mut rec, job);
                // A failed commit keeps the tensor resident; free it
                // now if the cache holds the last reference.
                if matches!(rec.state, RecState::Resident) && exclusive {
                    rec.tensor.storage().release();
                }
            }
            RecState::Offloaded => {}
        }
        // Catch-all: whatever path retired the record, its staging slab
        // must go back to the arena exactly once.
        let slab = rec.slab.take();
        self.retire_slab(slab);
        // Drop the entry wherever it lives and return the admission
        // reservation — the single release point of a record's bytes.
        self.tiers.remove(rec.tier, &rec.key, rec.bytes);
    }
}

/// RAII guard for one scheduler stage (created by
/// [`TensorCache::stage_scope`]).
///
/// Entry actions ran when the guard was created; dropping the guard runs
/// the exit actions (backward stages drain outstanding I/O) and emits
/// the stage's span (category `stage`) into the cache's trace sink,
/// closing the window between the paper's Algorithm 1 lines 9 and 15.
#[must_use = "dropping the scope immediately would end the stage before it ran"]
#[derive(Debug)]
pub struct StageScope<'c> {
    cache: &'c TensorCache,
    stage: StageHint,
    enter: SimTime,
}

impl StageScope<'_> {
    /// The stage this guard covers.
    pub fn stage(&self) -> StageHint {
        self.stage
    }

    /// Algorithm 1 lines 10–13 (`tc.set_next_stage(nxcmd)`): announces
    /// the *upcoming* stage; an upcoming backward pass prefetches the
    /// tail modules so their first reloads overlap the end of forward.
    pub fn announce_next(&self, next: StageHint) {
        if matches!(next, StageHint::Backward) {
            self.cache.prefetch_last_module();
        }
    }
}

impl Drop for StageScope<'_> {
    fn drop(&mut self) {
        self.cache.exit_stage(self.stage);
        let now = self.cache.io.clock().now();
        self.cache.trace().span(
            TraceCategory::Stage,
            self.stage.trace_label(),
            self.enter,
            now,
        );
    }
}

impl SavedTensorHooks for TensorCache {
    fn pack(&self, tensor: &Tensor) -> Packed {
        let mut inner = self.inner.lock();

        // Algorithm 2 lines 12 and 15 as a pure policy decision
        // (parameter / small / backward-phase / kept-module).
        let stamp = storage_stamp(tensor);
        let query = PlacementQuery {
            class: OffloadClass::Activation,
            is_parameter: inner.param_stamps.contains(&stamp),
            numel: tensor.numel(),
            in_backward: inner.phase.in_backward(),
            module_kept: self.innermost_kept(&inner),
        };
        if let Placement::Keep(reason) = self.placement.decide(&query) {
            if reason.counts_in_stats() {
                self.stats.lock().kept += 1;
            }
            return Packed::Tensor(tensor.clone());
        }

        let key = tensor_key(tensor);
        let cur_scope = inner.stack.last().copied();

        // Deduplication (Section 3.3.1).
        if self.config.dedup {
            if let Some(&id) = inner.by_key.get(&key) {
                let bytes = inner.records[&id].bytes;
                if let Some(seq) = cur_scope {
                    if let Some(rec) = inner.records.get_mut(&id) {
                        rec.scopes.insert(seq);
                    }
                    if let Some(meta) = inner.scopes.get_mut(&seq) {
                        if !meta.records.contains(&id) {
                            meta.records.push(id);
                        }
                    }
                }
                let mut stats = self.stats.lock();
                stats.dedup_hits += 1;
                stats.dedup_avoided_bytes += bytes;
                drop(stats);
                self.trace().instant_bytes(
                    TraceCategory::Dedup,
                    "dedup.hit",
                    self.io.clock().now(),
                    bytes,
                );
                return Packed::Opaque(id);
            }
        }

        // Tier admission: reserve capacity before any store job exists,
        // so a bounded front tier can never be oversubscribed by jobs
        // already in flight. A full stack refuses gracefully — the
        // tensor stays on the graph, numerics untouched. Under a
        // profile-guided tier plan the planned tier is preferred (its
        // fallback is the plain front-first walk).
        let bytes = tensor.bytes();
        let preferred = if self.config.profile_guided {
            cur_scope.and_then(|seq| {
                let path = &inner.scopes[&seq].path;
                self.tier_plan.lock().preferred(path)
            })
        } else {
            None
        };
        let placement = match preferred {
            Some(tier) => self.tiers.reserve_preferring(tier, bytes),
            None => self.tiers.reserve(bytes),
        };
        let Some(placement) = placement else {
            drop(inner);
            let mut stats = self.stats.lock();
            stats.kept += 1;
            stats.placement_kept_bytes += bytes;
            drop(stats);
            self.trace().instant_bytes(
                TraceCategory::Tier,
                "tier.full",
                self.io.clock().now(),
                bytes,
            );
            return Packed::Tensor(tensor.clone());
        };

        // New record. The bytes enter the pinned staging arena either
        // way; with coalescing enabled the record is *staged* into its
        // tier's open segment (the store job is submitted when the
        // segment seals — store jobs then count segments, not tensors),
        // otherwise a per-tensor store job is submitted immediately
        // (Figure 4 ①). The memory release is deferred until the store
        // commits.
        let slab = self.arena.acquire(bytes);
        let slab_acquired = slab.is_some();
        let staged = self.config.coalesce_segment_bytes > 0 && !inner.phase.in_backward();
        let (state, store_secs) = if staged {
            (RecState::Staged, 0.0)
        } else {
            let job = self
                .io
                .submit_store_to(self.tiers.link(placement.tier), bytes);
            let (start, end) = self.io.store_span(job);
            (RecState::Storing { job }, end.since(start))
        };
        let id = inner.next_id;
        inner.next_id += 1;
        let mut scopes = HashSet::new();
        if let Some(seq) = cur_scope {
            scopes.insert(seq);
            if let Some(meta) = inner.scopes.get_mut(&seq) {
                meta.records.push(id);
                meta.offload_bytes += bytes;
                // A staged record's link occupancy is attributed when its
                // segment seals.
                meta.store_secs += store_secs;
            }
        }
        inner.records.insert(
            id,
            Record {
                key: key.clone(),
                tensor: tensor.clone(),
                bytes,
                state,
                scopes,
                tier: placement.tier,
                seg: None,
                slab,
            },
        );
        inner.by_key.insert(key, id);
        if staged {
            let sealed =
                self.coalescer
                    .lock()
                    .stage(placement.tier, id, bytes, OffloadClass::Activation);
            if let Some(seg) = sealed {
                self.seal_segment(&mut inner, seg);
            }
        }
        drop(inner);
        let mut stats = self.stats.lock();
        stats.offloaded_bytes += bytes;
        if !staged {
            stats.store_jobs += 1;
        }
        if placement.spilled {
            stats.spilled_bytes += bytes;
        }
        let c = stats.class_mut(OffloadClass::Activation);
        c.offloaded_bytes += bytes;
        if !staged {
            c.stores += 1;
        }
        drop(stats);
        let trace = self.trace();
        let now = self.io.clock().now();
        if slab_acquired {
            trace.instant_bytes(TraceCategory::Arena, "arena.acquire", now, bytes);
        }
        trace.instant_bytes(TraceCategory::Store, "store.enqueue", now, bytes);
        if placement.spilled {
            trace.instant_with(
                TraceCategory::Tier,
                "tier.spill",
                now,
                vec![
                    ("bytes", ArgValue::U64(bytes)),
                    ("tier", ArgValue::from(self.tiers.name(placement.tier))),
                ],
            );
        }
        Packed::Opaque(id)
    }

    fn unpack(&self, packed: &Packed) -> Tensor {
        let id = match packed {
            // Algorithm 2, line 20.
            Packed::Tensor(t) => return t.clone(),
            Packed::Opaque(id) => *id,
        };
        let now = self.io.clock().now();
        let mut inner = self.inner.lock();
        // Coalesced-path pre-handling: staged members and members of
        // sealed segments need whole-segment treatment before the
        // per-record state machine below runs.
        let hit = match inner.records.get_mut(&id) {
            Some(rec) => match rec.state {
                RecState::Staged => {
                    rec.state = RecState::Resident;
                    Some(CoalescedHit::Evicted {
                        tier: rec.tier,
                        bytes: rec.bytes,
                        slab: rec.slab.take(),
                        tensor: rec.tensor.clone(),
                    })
                }
                RecState::Storing { job } => match rec.seg {
                    Some(seg) => {
                        let end = self.io.store_end(job);
                        if self.config.forwarding && now < end {
                            rec.state = RecState::Resident;
                            Some(CoalescedHit::Forwarded {
                                bytes: rec.bytes,
                                slab: rec.slab.take(),
                                tensor: rec.tensor.clone(),
                            })
                        } else {
                            Some(CoalescedHit::Commit { seg, end })
                        }
                    }
                    None => None,
                },
                _ => None,
            },
            None => None,
        };
        match hit {
            Some(CoalescedHit::Evicted {
                tier,
                bytes,
                slab,
                tensor,
            }) => {
                // The bytes never queued a job, so eviction is free
                // forwarding regardless of `config.forwarding` — but the
                // pack-time enqueue must be balanced by a cancel so the
                // trace byte identity holds.
                self.coalescer.lock().evict(tier, id);
                drop(inner);
                self.retire_slab(slab);
                let mut stats = self.stats.lock();
                stats.forwarded += 1;
                stats.forwarded_bytes += bytes;
                stats.cancelled_stores += 1;
                stats.cancelled_bytes += bytes;
                stats.offloaded_bytes -= bytes;
                stats.coalesce_evictions += 1;
                stats.class_mut(OffloadClass::Activation).offloaded_bytes -= bytes;
                drop(stats);
                let trace = self.trace();
                trace.instant_bytes(TraceCategory::Forwarding, "forward", now, bytes);
                trace.instant_bytes(TraceCategory::Store, "store.cancel", now, bytes);
                trace.instant_bytes(TraceCategory::Coalesce, "coalesce.evict", now, bytes);
                return tensor;
            }
            Some(CoalescedHit::Forwarded {
                bytes,
                slab,
                tensor,
            }) => {
                drop(inner);
                self.retire_slab(slab);
                let mut stats = self.stats.lock();
                stats.forwarded += 1;
                stats.forwarded_bytes += bytes;
                drop(stats);
                self.trace()
                    .instant_bytes(TraceCategory::Forwarding, "forward", now, bytes);
                return tensor;
            }
            Some(CoalescedHit::Commit { seg, end }) => {
                if now < end {
                    // Forwarding disabled: the load cannot begin until
                    // the segment's store finishes.
                    // ssdtrain-lint: allow(lock-discipline): the segment must commit under the same guard right after the drain; the simulation is single-threaded, so the hold cannot block a peer
                    let stall = self.io.clock().advance_to(end);
                    self.stats.lock().stall_secs += stall;
                    if stall > 0.0 {
                        self.trace().span(
                            TraceCategory::Stall,
                            "stall.store_drain",
                            end.plus_secs(-stall),
                            end,
                        );
                    }
                }
                self.commit_segment(&mut inner, seg);
                // Fall through: the member is now Offloaded (reload
                // below) or Resident (recovery kept it).
            }
            None => {}
        }
        let rec = inner
            .records
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unpack of unknown record {id}")); // ssdtrain-lint: allow(panic-free-hot-path): unpack of an unregistered id is an engine-integration bug, not a recoverable runtime failure
        match rec.state {
            // Staged records were evicted above; a record can only reach
            // this arm resident-equivalent.
            RecState::Staged => rec.tensor.clone(),
            RecState::Resident => rec.tensor.clone(),
            RecState::Storing { job } => {
                let end = self.io.store_end(job);
                if self.config.forwarding && now < end {
                    // Data forwarding (Section 3.3.2): the tensor is
                    // still in memory; skip the reload and, if the store
                    // has not started, cancel it (adaptive feature 1).
                    rec.state = RecState::Resident;
                    let bytes = rec.bytes;
                    let slab = rec.slab.take();
                    let t = rec.tensor.clone();
                    drop(inner);
                    self.retire_slab(slab);
                    let cancelled =
                        self.config.cancel_forwarded_stores && self.io.try_cancel_store(job, now);
                    let mut stats = self.stats.lock();
                    stats.forwarded += 1;
                    stats.forwarded_bytes += bytes;
                    if cancelled {
                        stats.cancelled_stores += 1;
                        stats.cancelled_bytes += bytes;
                        stats.offloaded_bytes -= bytes;
                        stats.store_jobs -= 1;
                        let c = stats.class_mut(OffloadClass::Activation);
                        c.offloaded_bytes -= bytes;
                        c.stores -= 1;
                    }
                    drop(stats);
                    let trace = self.trace();
                    trace.instant_bytes(TraceCategory::Forwarding, "forward", now, bytes);
                    if cancelled {
                        trace.instant_bytes(TraceCategory::Store, "store.cancel", now, bytes);
                    }
                    t
                } else {
                    // Store finished (or forwarding disabled): commit,
                    // then block on a synchronous reload.
                    if now < end {
                        // Forwarding disabled: the load cannot begin
                        // until the store finishes.
                        // ssdtrain-lint: allow(lock-discipline): `rec` borrows from the guard and is committed right after the drain; the simulation is single-threaded, so the hold cannot block a peer, and dropping/relocking would re-look-up the record mid-commit
                        let stall = self.io.clock().advance_to(end);
                        self.stats.lock().stall_secs += stall;
                        if stall > 0.0 {
                            self.trace().span(
                                TraceCategory::Stall,
                                "stall.store_drain",
                                end.plus_secs(-stall),
                                end,
                            );
                        }
                    }
                    self.commit_store(rec, job);
                    if matches!(rec.state, RecState::Resident) {
                        // Commit found live references: the tensor never
                        // left memory, no reload needed.
                        return rec.tensor.clone();
                    }
                    let link = self.tiers.link(rec.tier);
                    let busy0 = self.io.read_busy_secs_on(link);
                    let ready = self.io.submit_load_from(link, rec.bytes);
                    let load_secs = self.io.read_busy_secs_on(link) - busy0;
                    self.restore_record(rec, ready);
                    rec.state = RecState::Resident;
                    let bytes = rec.bytes;
                    let t = rec.tensor.clone();
                    let seq = rec.scopes.iter().min().copied();
                    if let Some(seq) = seq {
                        if let Some(meta) = inner.scopes.get_mut(&seq) {
                            meta.load_secs += load_secs;
                        }
                    }
                    drop(inner);
                    let stall = self.io.clock().advance_to(ready);
                    let mut stats = self.stats.lock();
                    stats.sync_loads += 1;
                    stats.reloaded_bytes += bytes;
                    stats.stall_secs += stall;
                    let c = stats.class_mut(OffloadClass::Activation);
                    c.reloaded_bytes += bytes;
                    c.loads += 1;
                    drop(stats);
                    if stall > 0.0 {
                        self.trace().span(
                            TraceCategory::Stall,
                            "stall.load",
                            ready.plus_secs(-stall),
                            ready,
                        );
                    }
                    t
                }
            }
            RecState::Offloaded => {
                let link = self.tiers.link(rec.tier);
                let busy0 = self.io.read_busy_secs_on(link);
                // ssdtrain-lint: allow(no-alloc-hot-loop): submitting the
                // reload is the data path; its bookkeeping rides the transfer
                let ready = self.io.submit_load_from(link, rec.bytes);
                let load_secs = self.io.read_busy_secs_on(link) - busy0;
                self.restore_record(rec, ready);
                rec.state = RecState::Resident;
                let bytes = rec.bytes;
                let t = rec.tensor.clone();
                let seq = rec.scopes.iter().min().copied();
                if let Some(seq) = seq {
                    if let Some(meta) = inner.scopes.get_mut(&seq) {
                        meta.load_secs += load_secs;
                    }
                }
                drop(inner);
                let stall = self.io.clock().advance_to(ready);
                let mut stats = self.stats.lock();
                stats.sync_loads += 1;
                stats.reloaded_bytes += bytes;
                stats.stall_secs += stall;
                let c = stats.class_mut(OffloadClass::Activation);
                c.reloaded_bytes += bytes;
                c.loads += 1;
                drop(stats);
                if stall > 0.0 {
                    self.trace().span(
                        TraceCategory::Stall,
                        "stall.load",
                        ready.plus_secs(-stall),
                        ready,
                    );
                }
                t
            }
            RecState::Loading { ready } => {
                rec.state = RecState::Resident;
                let t = rec.tensor.clone();
                drop(inner);
                let stall = self.io.clock().advance_to(ready);
                self.stats.lock().stall_secs += stall;
                if stall > 0.0 {
                    self.trace().span(
                        TraceCategory::Stall,
                        "stall.load",
                        ready.plus_secs(-stall),
                        ready,
                    );
                }
                t
            }
        }
    }
}

impl ModuleHooks for TensorCache {
    fn forward_pre(&self, scope: &ScopeInfo) {
        let mut inner = self.inner.lock();
        if inner.phase != Phase::Forward {
            return;
        }
        inner.current_mb = scope.micro_batch;
        inner.stack.push(scope.seq);
        inner.scopes.insert(
            scope.seq,
            ScopeMeta {
                path: scope.path.clone(),
                records: Vec::new(),
                enter: self.io.clock().now(),
                fwd_secs: 0.0,
                offload_bytes: 0,
                store_secs: 0.0,
                load_secs: 0.0,
            },
        );
        inner
            .forward_order
            .entry(scope.micro_batch)
            .or_default()
            .push(scope.seq);
    }

    fn forward_post(&self, scope: &ScopeInfo) {
        let mut inner = self.inner.lock();
        if inner.phase != Phase::Forward {
            return;
        }
        let now = self.io.clock().now();
        if let Some(meta) = inner.scopes.get_mut(&scope.seq) {
            meta.fwd_secs = now.since(meta.enter);
        }
        if inner.stack.last() == Some(&scope.seq) {
            inner.stack.pop();
        }
    }

    fn backward_pre(&self, scope: &ScopeInfo) {
        // Prefetch the activations of the modules processed next in
        // backward order, i.e. the nearest earlier modules in forward
        // order that hold records (Section 3.3.2). Depth > 1 keeps the
        // read channel saturated across module boundaries.
        let pos = {
            let inner = self.inner.lock();
            let Some(order) = inner.forward_order.get(&scope.micro_batch) else {
                return;
            };
            match order.iter().position(|s| *s == scope.seq) {
                Some(p) => p,
                None => return,
            }
        };
        let g = self.config.prefetch_group_modules;
        if self.config.prefetch && g > 0 {
            // Group-based double buffering: while the current group is
            // consumed the previous one loads on the second buffer —
            // `prefetch_depth` groups stay in flight.
            let cur = pos / g;
            for d in 0..self.config.prefetch_depth.max(1) {
                if d > cur {
                    break;
                }
                // ssdtrain-lint: allow(no-alloc-hot-loop): issuing a group
                // prefetch submits the group's reloads — the data path
                self.prefetch_group(scope.micro_batch, cur - d);
            }
            // Groups above the current one were fully consumed; return
            // their staging slabs so the double buffer stays two deep.
            let slabs: Vec<PinnedSlab> = {
                let mut inner = self.inner.lock();
                let done: Vec<(usize, usize)> = inner
                    .group_slabs
                    .keys()
                    .filter(|(mb, gi)| *mb == scope.micro_batch && *gi > cur)
                    .copied()
                    .collect();
                done.iter()
                    .filter_map(|k| inner.group_slabs.remove(k))
                    .collect()
            };
            let now = self.io.clock().now();
            let trace = self.trace();
            for slab in slabs {
                let len = slab.len;
                if self.arena.release(slab) {
                    trace.instant_bytes(TraceCategory::Arena, "arena.release", now, len);
                }
            }
            return;
        }
        let ids = self.records_before(scope.micro_batch, pos, self.config.prefetch_depth.max(1));
        self.prefetch_records(&ids);
    }

    fn backward_post(&self, scope: &ScopeInfo) {
        // Algorithm 2 lines 8–10: drop this scope from its records and
        // release records nobody references.
        let to_release: Vec<RecordId> = {
            let mut inner = self.inner.lock();
            let Some(meta) = inner.scopes.get(&scope.seq) else {
                return;
            };
            let ids = meta.records.clone();
            let mut done = Vec::new();
            for id in ids {
                if let Some(rec) = inner.records.get_mut(&id) {
                    rec.scopes.remove(&scope.seq);
                    if rec.scopes.is_empty() {
                        done.push(id);
                    }
                }
            }
            done
        };
        for id in to_release {
            // ssdtrain-lint: allow(no-alloc-hot-loop): releasing a record
            // serialises and writes its payload — the buffer is the offload
            self.release_record(id);
        }
    }

    fn phase_changed(&self, phase: Phase) {
        let mut inner = self.inner.lock();
        if inner.phase == Phase::Forward && phase == Phase::Backward {
            inner.fwd_secs = self.io.clock().now().since(inner.fwd_start);
        }
        inner.phase = phase;
    }
}

impl std::fmt::Debug for TensorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TensorCache")
            .field("records", &inner.records.len())
            .field("phase", &inner.phase)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}
