//! Typed errors for the offload path.
//!
//! Target I/O failures no longer panic inside the pack/unpack hooks:
//! they become [`OffloadError`] values that the cache either recovers
//! from (per [`crate::RecoveryPolicy`]) or surfaces to the training
//! loop at the end of the step.

use crate::id::TensorKey;
use std::fmt;
use std::io;

/// A failure on the offload path that recovery could not absorb.
#[derive(Debug)]
pub enum OffloadError {
    /// A store to the offload target failed (after any fallback
    /// attempts) and the policy was to fail the step.
    Store {
        /// Key of the tensor whose store failed.
        key: TensorKey,
        /// Size of the failed store.
        bytes: u64,
        /// Target that refused the write.
        target: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A load from the offload target failed even after retries; the
    /// activation bytes are unrecoverable.
    Load {
        /// Key of the tensor whose load failed.
        key: TensorKey,
        /// Size of the lost activation.
        bytes: u64,
        /// Target that could not produce the bytes.
        target: String,
        /// Read attempts made (1 + retries).
        attempts: u32,
        /// The last I/O error observed.
        source: io::Error,
    },
}

impl OffloadError {
    /// Key of the tensor involved in the failure.
    pub fn key(&self) -> &TensorKey {
        match self {
            OffloadError::Store { key, .. } | OffloadError::Load { key, .. } => key,
        }
    }

    /// Name of the target that failed.
    pub fn target(&self) -> &str {
        match self {
            OffloadError::Store { target, .. } | OffloadError::Load { target, .. } => target,
        }
    }

    /// Whether the failure happened on the store (write) side.
    pub fn is_store(&self) -> bool {
        matches!(self, OffloadError::Store { .. })
    }
}

impl fmt::Display for OffloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadError::Store {
                key,
                bytes,
                target,
                source,
            } => write!(
                f,
                "store of {key} ({bytes} B) to target `{target}` failed: {source}"
            ),
            OffloadError::Load {
                key,
                bytes,
                target,
                attempts,
                source,
            } => write!(
                f,
                "load of {key} ({bytes} B) from target `{target}` failed \
                 after {attempts} attempt(s): {source}"
            ),
        }
    }
}

impl std::error::Error for OffloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OffloadError::Store { source, .. } | OffloadError::Load { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> TensorKey {
        TensorKey {
            stamp: 7,
            shape: vec![2, 3],
        }
    }

    #[test]
    fn display_names_the_key_and_target() {
        let e = OffloadError::Store {
            key: key(),
            bytes: 24,
            target: "ssd".into(),
            source: io::Error::other("injected"),
        };
        let msg = e.to_string();
        assert!(msg.contains("ssd") && msg.contains("injected"), "{msg}");
        assert!(e.is_store());
        assert_eq!(e.target(), "ssd");
    }

    #[test]
    fn load_error_reports_attempts() {
        let e = OffloadError::Load {
            key: key(),
            bytes: 24,
            target: "ssd".into(),
            attempts: 3,
            source: io::Error::other("injected"),
        };
        assert!(e.to_string().contains("3 attempt"));
        assert!(!e.is_store());
        assert!(std::error::Error::source(&e).is_some());
    }
}
