//! Store/load job engine — the paper's two I/O thread pools
//! (Section 3.3.2).
//!
//! Jobs execute in FIFO order per direction, exactly like the paper's
//! store and load pools. Timing is modelled on the simulated clock: a job
//! submitted at `t` starts when the direction's previous job finished and
//! occupies the channel for `bytes / bandwidth`. Queued (not yet started)
//! store jobs can be *cancelled* when their tensor was forwarded
//! (adaptive offloading feature 1), which reflows the queue.

use parking_lot::Mutex;
use ssdtrain_simhw::{Channel, SimClock, SimTime};
use ssdtrain_trace::{LinkTraceBridge, TraceCategory, TraceSink};
use std::sync::Arc;

/// Handle to a submitted store job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(usize);

#[derive(Debug, Clone)]
struct WriteJob {
    bytes: u64,
    submit: SimTime,
    start: SimTime,
    end: SimTime,
    // Transfer duration at the bandwidth in effect when the job was
    // (re)priced; reflow reuses it so cancellations never re-price
    // history.
    dur_secs: f64,
    cancelled: bool,
}

#[derive(Debug)]
struct WriteQueue {
    jobs: Vec<WriteJob>,
    slowdown: f64,
}

impl Default for WriteQueue {
    fn default() -> WriteQueue {
        WriteQueue {
            jobs: Vec::new(),
            slowdown: 1.0,
        }
    }
}

impl WriteQueue {
    fn reflow(&mut self) {
        let mut prev_end = SimTime::ZERO;
        for j in self.jobs.iter_mut().filter(|j| !j.cancelled) {
            j.start = j.submit.max(prev_end);
            j.end = j.start.plus_secs(j.dur_secs);
            prev_end = j.end;
        }
    }

    /// Applies a slowdown at `now`: queued jobs stretch fully, a job in
    /// flight stretches only its remaining portion, finished jobs keep
    /// their history. FIFO order is untouched.
    fn throttle(&mut self, factor: f64, now: SimTime) {
        self.slowdown *= factor;
        for j in self.jobs.iter_mut().filter(|j| !j.cancelled) {
            if j.end <= now {
                continue;
            }
            if j.start >= now {
                j.dur_secs *= factor;
            } else {
                let done = now.as_secs() - j.start.as_secs();
                let remaining = j.end.as_secs() - now.as_secs();
                j.dur_secs = done + remaining * factor;
            }
        }
        self.reflow();
    }
}

/// The simulated store/load engine shared by a tensor cache.
///
/// ```
/// use ssdtrain::IoEngine;
/// use ssdtrain_simhw::SimClock;
/// let io = IoEngine::new(SimClock::new(), 1e9, 2e9);
/// let job = io.submit_store(500_000_000); // 0.5 s at 1 GB/s
/// assert_eq!(io.store_end(job).as_secs(), 0.5);
/// let ready = io.submit_load(1_000_000_000); // full duplex
/// assert_eq!(ready.as_secs(), 0.5);
/// ```
#[derive(Clone)]
pub struct IoEngine {
    clock: SimClock,
    write_bps: f64,
    writes: Arc<Mutex<WriteQueue>>,
    reads: Channel,
    trace: Arc<Mutex<TraceSink>>,
}

impl IoEngine {
    /// Creates an engine over one offload target's write/read bandwidths.
    ///
    /// # Panics
    /// Panics if a bandwidth is not positive.
    pub fn new(clock: SimClock, write_bps: f64, read_bps: f64) -> IoEngine {
        assert!(
            write_bps > 0.0 && read_bps > 0.0,
            "bandwidth must be positive"
        );
        IoEngine {
            clock,
            write_bps,
            writes: Arc::new(Mutex::new(WriteQueue::default())),
            reads: Channel::new("offload-read", read_bps),
            trace: Arc::new(Mutex::new(TraceSink::disabled())),
        }
    }

    /// Routes this engine's events into `sink`: load spans (category
    /// `load`) directly, and raw read-channel bookings (category `link`)
    /// via a [`LinkTraceBridge`]. Clones of this engine share the sink.
    pub fn set_trace(&self, sink: TraceSink) {
        self.reads.set_observer(LinkTraceBridge::new(sink.clone()));
        *self.trace.lock() = sink;
    }

    fn trace(&self) -> TraceSink {
        self.trace.lock().clone()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Configured write bandwidth, bytes/s (the adaptive planner's budget).
    pub fn write_bps(&self) -> f64 {
        self.write_bps
    }

    /// Configured read bandwidth, bytes/s.
    pub fn read_bps(&self) -> f64 {
        self.reads.bandwidth()
    }

    /// Write bandwidth currently delivered, after any injected slowdown.
    pub fn effective_write_bps(&self) -> f64 {
        self.write_bps / self.writes.lock().slowdown
    }

    /// Read bandwidth currently delivered, after any injected slowdown.
    pub fn effective_read_bps(&self) -> f64 {
        self.reads.effective_bandwidth()
    }

    /// Degrades both directions by `factor` from the current simulated
    /// time: queued and in-flight writes are rescheduled (remaining
    /// bytes at the slower rate, FIFO order preserved) and future reads
    /// take `factor` times longer. Factors compose multiplicatively and
    /// persist across [`IoEngine::reset`] — injected hardware
    /// degradation does not heal between steps.
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn throttle(&self, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.writes.lock().throttle(factor, self.clock.now());
        self.reads.throttle(factor);
    }

    /// Submits a store of `bytes` at the current time; returns its id.
    pub fn submit_store(&self, bytes: u64) -> JobId {
        let now = self.clock.now();
        let mut q = self.writes.lock();
        let prev_end = q
            .jobs
            .iter()
            .rev()
            .find(|j| !j.cancelled)
            .map(|j| j.end)
            .unwrap_or(SimTime::ZERO);
        let start = now.max(prev_end);
        let dur_secs = bytes as f64 * q.slowdown / self.write_bps;
        let end = start.plus_secs(dur_secs);
        q.jobs.push(WriteJob {
            bytes,
            submit: now,
            start,
            end,
            dur_secs,
            cancelled: false,
        });
        JobId(q.jobs.len() - 1)
    }

    /// Current scheduled completion time of a store (may move earlier if
    /// queued jobs ahead of it are cancelled).
    ///
    /// # Panics
    /// Panics on an unknown or cancelled job.
    pub fn store_end(&self, job: JobId) -> SimTime {
        self.store_span(job).1
    }

    /// Current scheduled `(start, end)` interval of a store — the span a
    /// trace records when the store commits.
    ///
    /// # Panics
    /// Panics on an unknown or cancelled job.
    pub fn store_span(&self, job: JobId) -> (SimTime, SimTime) {
        let q = self.writes.lock();
        let j = &q.jobs[job.0];
        assert!(!j.cancelled, "store_span of a cancelled job");
        (j.start, j.end)
    }

    /// Whether the store has started transferring by `now`.
    pub fn store_started(&self, job: JobId, now: SimTime) -> bool {
        let q = self.writes.lock();
        let j = &q.jobs[job.0];
        !j.cancelled && j.start <= now
    }

    /// Cancels a store if it has not started by `now`; returns `true` on
    /// success (the adaptive-offloading check a store worker performs
    /// before writing a forwarded tensor).
    pub fn try_cancel_store(&self, job: JobId, now: SimTime) -> bool {
        let mut q = self.writes.lock();
        let j = &mut q.jobs[job.0];
        if j.cancelled || j.start <= now {
            return false;
        }
        j.cancelled = true;
        q.reflow();
        true
    }

    /// Submits a load of `bytes` at the current time; returns the time
    /// the data is resident in GPU memory.
    pub fn submit_load(&self, bytes: u64) -> SimTime {
        let (start, end) = self.reads.submit(self.clock.now(), bytes);
        self.trace()
            .span_bytes(TraceCategory::Load, "load", start, end, bytes);
        end
    }

    /// When the write direction finishes its last scheduled job.
    pub fn writes_drain_at(&self) -> SimTime {
        self.writes
            .lock()
            .jobs
            .iter()
            .filter(|j| !j.cancelled)
            .map(|j| j.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total bytes actually written (cancelled jobs excluded).
    pub fn bytes_written(&self) -> u64 {
        self.writes
            .lock()
            .jobs
            .iter()
            .filter(|j| !j.cancelled)
            .map(|j| j.bytes)
            .sum()
    }

    /// Total bytes read back.
    pub fn bytes_read(&self) -> u64 {
        self.reads.bytes_total()
    }

    /// Seconds the write direction was busy.
    pub fn write_busy_secs(&self) -> f64 {
        self.writes
            .lock()
            .jobs
            .iter()
            .filter(|j| !j.cancelled)
            .map(|j| j.dur_secs)
            .sum()
    }

    /// Clears all job state (new measured step). An injected slowdown
    /// persists; see [`IoEngine::throttle`].
    pub fn reset(&self) {
        self.writes.lock().jobs.clear();
        self.reads.reset();
    }
}

impl std::fmt::Debug for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine")
            .field("write_gbps", &(self.write_bps / 1e9))
            .field("read_gbps", &(self.reads.bandwidth() / 1e9))
            .field("bytes_written", &self.bytes_written())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (SimClock, IoEngine) {
        let clock = SimClock::new();
        let io = IoEngine::new(clock.clone(), 1e9, 2e9);
        (clock, io)
    }

    #[test]
    fn stores_run_fifo() {
        let (_c, io) = engine();
        let a = io.submit_store(1_000_000_000); // 1 s
        let b = io.submit_store(500_000_000); // queued behind
        assert_eq!(io.store_end(a).as_secs(), 1.0);
        assert_eq!(io.store_end(b).as_secs(), 1.5);
    }

    #[test]
    fn cancelling_a_queued_store_reflows_the_queue() {
        let (_c, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        let c = io.submit_store(1_000_000_000);
        assert_eq!(io.store_end(c).as_secs(), 3.0);
        // b has not started at t=0.5.
        assert!(io.try_cancel_store(b, SimTime::from_secs(0.5)));
        assert_eq!(io.store_end(c).as_secs(), 2.0);
        assert_eq!(io.bytes_written(), 2_000_000_000);
    }

    #[test]
    fn started_stores_cannot_be_cancelled() {
        let (_c, io) = engine();
        let a = io.submit_store(1_000_000_000);
        assert!(io.store_started(a, SimTime::from_secs(0.1)));
        assert!(!io.try_cancel_store(a, SimTime::from_secs(0.1)));
        assert_eq!(io.bytes_written(), 1_000_000_000);
    }

    #[test]
    fn loads_use_the_read_channel() {
        let (clock, io) = engine();
        clock.advance_by(1.0);
        let ready = io.submit_load(2_000_000_000); // 1 s at 2 GB/s
        assert_eq!(ready.as_secs(), 2.0);
        assert_eq!(io.bytes_read(), 2_000_000_000);
    }

    #[test]
    fn writes_overlap_reads_full_duplex() {
        let (_c, io) = engine();
        io.submit_store(1_000_000_000);
        let ready = io.submit_load(2_000_000_000);
        // Read finishes at 1 s even though a write occupies 0..1 s.
        assert_eq!(ready.as_secs(), 1.0);
    }

    #[test]
    fn drain_time_tracks_last_live_job() {
        let (_c, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        assert_eq!(io.writes_drain_at().as_secs(), 2.0);
        io.try_cancel_store(b, SimTime::ZERO);
        assert_eq!(io.writes_drain_at().as_secs(), 1.0);
    }

    #[test]
    fn throttle_stretches_queued_and_inflight_writes() {
        let (clock, io) = engine();
        let a = io.submit_store(1_000_000_000); // scheduled 0..1 s
        let b = io.submit_store(1_000_000_000); // scheduled 1..2 s
        clock.advance_by(0.5);
        io.throttle(2.0);
        // a: 0.5 s done + 0.5 s remaining at half speed = ends at 1.5 s.
        assert_eq!(io.store_end(a).as_secs(), 1.5);
        // b: not started, takes 2 s, queued behind a.
        assert_eq!(io.store_end(b).as_secs(), 3.5);
        assert_eq!(io.effective_write_bps(), 0.5e9);
        // Future reads also slow: 2 GB at an effective 1 GB/s.
        let ready = io.submit_load(2_000_000_000);
        assert_eq!(ready.as_secs(), 2.5);
    }

    #[test]
    fn cancellation_after_throttle_keeps_fifo_and_pricing() {
        let (clock, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        let c = io.submit_store(1_000_000_000);
        clock.advance_by(0.5);
        io.throttle(2.0);
        assert_eq!(io.store_end(c).as_secs(), 5.5);
        // Cancelling b pulls c forward without re-pricing a's history.
        assert!(io.try_cancel_store(b, clock.now()));
        assert_eq!(io.store_end(c).as_secs(), 3.5);
        let busy = io.write_busy_secs();
        assert!((busy - 3.5).abs() < 1e-9, "busy {busy}");
    }

    #[test]
    fn idle_write_queue_starts_at_submit_time() {
        let (clock, io) = engine();
        clock.advance_by(3.0);
        let a = io.submit_store(1_000_000_000);
        assert_eq!(io.store_end(a).as_secs(), 4.0);
    }
}
