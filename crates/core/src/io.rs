//! Store/load job engine — the paper's two I/O thread pools
//! (Section 3.3.2), one pair per offload tier.
//!
//! Jobs execute in FIFO order per direction *per tier link*, exactly
//! like the paper's store and load pools. Timing is modelled on the
//! simulated clock: a job submitted at `t` starts when the link
//! direction's previous job finished and occupies it for
//! `bytes / bandwidth`. Queued (not yet started) store jobs can be
//! *cancelled* when their tensor was forwarded (adaptive offloading
//! feature 1), which reflows that link's queue.
//!
//! A tiered engine ([`IoEngine::tiered`]) prices each tier's transfers
//! against its own simulated link — PCIe-to-DRAM for a host pool tier,
//! PCIe-to-SSD for the array — full duplex each. The single-link
//! constructor ([`IoEngine::new`]) reproduces the flat pre-tier engine.
//!
//! On a real node every offload write leaves the GPU over *one* PCIe
//! link, whatever tier it lands on; [`IoEngine::tiered_with_bus`]
//! models that by serialising all store jobs FIFO across links on a
//! shared write bus (each job still pays its own link's rate, capped by
//! the bus). Loads stay independent per link — PCIe is full duplex and
//! the read path is not the paper's bottleneck.

use parking_lot::Mutex;
use ssdtrain_simhw::{Channel, SimClock, SimTime};
use ssdtrain_trace::{LinkTraceBridge, TraceCategory, TraceSink};
use std::sync::Arc;

/// Handle to a submitted store job (identifies the link it queues on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId {
    link: usize,
    idx: usize,
}

/// The simulated write/read bandwidths of one tier's link.
#[derive(Debug, Clone, PartialEq)]
pub struct TierLink {
    /// Link name; the read channel is traced as `"<name>-read"`.
    pub name: String,
    /// Store-direction bandwidth, bytes/s.
    pub write_bps: f64,
    /// Load-direction bandwidth, bytes/s.
    pub read_bps: f64,
}

impl TierLink {
    /// A full-duplex link with the given per-direction bandwidths.
    pub fn new(name: impl Into<String>, write_bps: f64, read_bps: f64) -> TierLink {
        TierLink {
            name: name.into(),
            write_bps,
            read_bps,
        }
    }
}

#[derive(Debug, Clone)]
struct WriteJob {
    bytes: u64,
    submit: SimTime,
    start: SimTime,
    end: SimTime,
    // Transfer duration at the bandwidth in effect when the job was
    // (re)priced; reflow reuses it so cancellations never re-price
    // history.
    dur_secs: f64,
    cancelled: bool,
}

#[derive(Debug)]
struct WriteQueue {
    jobs: Vec<WriteJob>,
    slowdown: f64,
}

impl Default for WriteQueue {
    fn default() -> WriteQueue {
        WriteQueue {
            jobs: Vec::new(),
            slowdown: 1.0,
        }
    }
}

impl WriteQueue {
    fn reflow(&mut self) {
        let mut prev_end = SimTime::ZERO;
        for j in self.jobs.iter_mut().filter(|j| !j.cancelled) {
            j.start = j.submit.max(prev_end);
            j.end = j.start.plus_secs(j.dur_secs);
            prev_end = j.end;
        }
    }

    /// Applies a slowdown at `now` without rescheduling: queued jobs
    /// stretch fully, a job in flight stretches only its remaining
    /// portion, finished jobs keep their history. The caller reflows
    /// (per-queue or bus-wide). FIFO order is untouched.
    fn stretch(&mut self, factor: f64, now: SimTime) {
        self.slowdown *= factor;
        for j in self.jobs.iter_mut().filter(|j| !j.cancelled) {
            if j.end <= now {
                continue;
            }
            if j.start >= now {
                j.dur_secs *= factor;
            } else {
                let done = now.as_secs() - j.start.as_secs();
                let remaining = j.end.as_secs() - now.as_secs();
                j.dur_secs = done + remaining * factor;
            }
        }
    }

    fn throttle(&mut self, factor: f64, now: SimTime) {
        self.stretch(factor, now);
        self.reflow();
    }
}

/// One tier link's queue pair: a FIFO write queue plus a read channel.
struct LinkQueues {
    name: String,
    write_bps: f64,
    writes: Mutex<WriteQueue>,
    reads: Channel,
    /// Seconds the read direction was busy this step (sum of transfer
    /// durations booked on the read channel; cleared by `reset`).
    read_busy_secs: Mutex<f64>,
}

/// Shared write-bus state: the global FIFO submission order every
/// non-cancelled store serialises through when a bus is configured.
struct BusState {
    write_bps: f64,
    order: Mutex<Vec<JobId>>,
}

/// The simulated store/load engine shared by a tensor cache.
///
/// ```
/// use ssdtrain::IoEngine;
/// use ssdtrain_simhw::SimClock;
/// let io = IoEngine::new(SimClock::new(), 1e9, 2e9);
/// let job = io.submit_store(500_000_000); // 0.5 s at 1 GB/s
/// assert_eq!(io.store_end(job).as_secs(), 0.5);
/// let ready = io.submit_load(1_000_000_000); // full duplex
/// assert_eq!(ready.as_secs(), 0.5);
/// ```
///
/// Tiered pricing without a bus ([`IoEngine::tiered`]) treats each link
/// as an independent full-duplex resource — the right model when tiers
/// sit behind genuinely separate interconnects:
///
/// ```
/// use ssdtrain::{IoEngine, TierLink};
/// use ssdtrain_simhw::SimClock;
/// let io = IoEngine::tiered(
///     SimClock::new(),
///     vec![TierLink::new("dram", 2e9, 2e9), TierLink::new("ssd", 1e9, 1e9)],
/// );
/// let a = io.submit_store_to(0, 2_000_000_000); // 1 s on the DRAM link
/// let b = io.submit_store_to(1, 1_000_000_000); // 1 s on the SSD link
/// assert_eq!(io.store_end(a).as_secs(), 1.0);
/// assert_eq!(io.store_end(b).as_secs(), 1.0); // no cross-tier queueing
/// ```
///
/// With a shared write bus ([`IoEngine::tiered_with_bus`]) — the model a
/// [`TrainSession`](../ssdtrain_train/index.html) uses, because both
/// tiers sit behind the same GPU PCIe link — stores serialise FIFO
/// across links and the second store waits for the first:
///
/// ```
/// use ssdtrain::{IoEngine, TierLink};
/// use ssdtrain_simhw::SimClock;
/// let io = IoEngine::tiered_with_bus(
///     SimClock::new(),
///     vec![TierLink::new("dram", 2e9, 2e9), TierLink::new("ssd", 1e9, 1e9)],
///     2e9, // one PCIe write bus shared by both tiers
/// );
/// let a = io.submit_store_to(0, 2_000_000_000); // 0..1 s, dram at bus rate
/// let b = io.submit_store_to(1, 1_000_000_000); // bus busy until 1 s
/// assert_eq!(io.store_end(a).as_secs(), 1.0);
/// assert_eq!(io.store_end(b).as_secs(), 2.0); // cross-tier queueing
/// ```
#[derive(Clone)]
pub struct IoEngine {
    clock: SimClock,
    links: Arc<Vec<LinkQueues>>,
    bus: Option<Arc<BusState>>,
    trace: Arc<Mutex<TraceSink>>,
    /// Fixed seconds added to every store job's duration at submit time
    /// (driver ioctl + DMA descriptor setup). Shared by clones; reflows
    /// reuse `dur_secs`, so the overhead sticks to a job for life.
    store_overhead: Arc<Mutex<f64>>,
}

impl IoEngine {
    /// Creates a single-link engine over one offload target's
    /// write/read bandwidths — the flat pre-tier shape.
    ///
    /// # Panics
    /// Panics if a bandwidth is not positive.
    pub fn new(clock: SimClock, write_bps: f64, read_bps: f64) -> IoEngine {
        IoEngine::tiered(clock, vec![TierLink::new("offload", write_bps, read_bps)])
    }

    /// Creates an engine with one queue pair per tier link, each priced
    /// independently.
    ///
    /// # Panics
    /// Panics if `links` is empty or any bandwidth is not positive —
    /// both are construction-time configuration bugs.
    pub fn tiered(clock: SimClock, links: Vec<TierLink>) -> IoEngine {
        IoEngine::build(clock, links, None)
    }

    /// Creates an engine whose store jobs all serialise FIFO through one
    /// shared write bus of `bus_write_bps` bytes/s, whatever link they
    /// target — the single-PCIe-link reality of the paper's testbed. A
    /// job transfers at `min(link write bps, bus bps)` (after any
    /// slowdown); loads stay independent per link (full duplex).
    ///
    /// # Panics
    /// Panics if `links` is empty or any bandwidth (including the bus)
    /// is not positive — construction-time configuration bugs.
    pub fn tiered_with_bus(clock: SimClock, links: Vec<TierLink>, bus_write_bps: f64) -> IoEngine {
        assert!(bus_write_bps > 0.0, "bus bandwidth must be positive");
        IoEngine::build(clock, links, Some(bus_write_bps))
    }

    fn build(clock: SimClock, links: Vec<TierLink>, bus_write_bps: Option<f64>) -> IoEngine {
        assert!(!links.is_empty(), "an IoEngine needs at least one link");
        let links = links
            .into_iter()
            .map(|l| {
                assert!(
                    l.write_bps > 0.0 && l.read_bps > 0.0,
                    "bandwidth must be positive"
                );
                LinkQueues {
                    reads: Channel::new(&format!("{}-read", l.name), l.read_bps),
                    name: l.name,
                    write_bps: l.write_bps,
                    writes: Mutex::new(WriteQueue::default()),
                    read_busy_secs: Mutex::new(0.0),
                }
            })
            .collect();
        IoEngine {
            clock,
            links: Arc::new(links),
            bus: bus_write_bps.map(|write_bps| {
                Arc::new(BusState {
                    write_bps,
                    order: Mutex::new(Vec::new()),
                })
            }),
            trace: Arc::new(Mutex::new(TraceSink::disabled())),
            store_overhead: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Sets the fixed per-store-job submission overhead in seconds
    /// (negative values clamp to zero). Applies to stores submitted from
    /// now on; already-queued jobs keep their pricing.
    pub fn set_store_job_overhead(&self, secs: f64) {
        *self.store_overhead.lock() = secs.max(0.0);
    }

    /// The configured per-store-job submission overhead, seconds.
    pub fn store_job_overhead_secs(&self) -> f64 {
        *self.store_overhead.lock()
    }

    /// Routes this engine's events into `sink`: load spans (category
    /// `load`) directly, and raw read-channel bookings (category `link`)
    /// via a [`LinkTraceBridge`] per tier. Clones of this engine share
    /// the sink.
    pub fn set_trace(&self, sink: TraceSink) {
        for link in self.links.iter() {
            link.reads.set_observer(LinkTraceBridge::new(sink.clone()));
        }
        *self.trace.lock() = sink;
    }

    fn trace(&self) -> TraceSink {
        self.trace.lock().clone()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Number of tier links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Configured aggregate write bandwidth across every link, bytes/s
    /// (the adaptive planner's budget).
    pub fn write_bps(&self) -> f64 {
        self.links.iter().map(|l| l.write_bps).sum()
    }

    /// Configured aggregate read bandwidth, bytes/s.
    pub fn read_bps(&self) -> f64 {
        self.links.iter().map(|l| l.reads.bandwidth()).sum()
    }

    /// Configured write bandwidth of one link, bytes/s.
    pub fn write_bps_of(&self, link: usize) -> f64 {
        self.links.get(link).map(|l| l.write_bps).unwrap_or(0.0)
    }

    /// Configured read bandwidth of one link, bytes/s.
    pub fn read_bps_of(&self, link: usize) -> f64 {
        self.links
            .get(link)
            .map(|l| l.reads.bandwidth())
            .unwrap_or(0.0)
    }

    /// Aggregate write bandwidth currently delivered, after any injected
    /// slowdown.
    pub fn effective_write_bps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.write_bps / l.writes.lock().slowdown)
            .sum()
    }

    /// Aggregate read bandwidth currently delivered, after any injected
    /// slowdown.
    pub fn effective_read_bps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.reads.effective_bandwidth())
            .sum()
    }

    /// Degrades both directions of *every* link by `factor` from the
    /// current simulated time: queued and in-flight writes are
    /// rescheduled (remaining bytes at the slower rate, FIFO order
    /// preserved) and future reads take `factor` times longer. Factors
    /// compose multiplicatively and persist across [`IoEngine::reset`] —
    /// injected hardware degradation does not heal between steps.
    ///
    /// # Panics
    /// Panics if `factor` is not positive.
    pub fn throttle(&self, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        let now = self.clock.now();
        for link in self.links.iter() {
            match &self.bus {
                Some(_) => link.writes.lock().stretch(factor, now),
                None => link.writes.lock().throttle(factor, now),
            }
            link.reads.throttle(factor);
        }
        if let Some(bus) = &self.bus {
            self.reflow_bus(bus);
        }
    }

    /// Submits a store of `bytes` on link 0 at the current time.
    pub fn submit_store(&self, bytes: u64) -> JobId {
        self.submit_store_to(0, bytes)
    }

    /// Submits a store of `bytes` on the tier link `link` at the
    /// current time; returns its id. An out-of-range link is clamped to
    /// the last one (a misrouted job still makes progress; tier wiring
    /// bugs surface in tests, not as a training crash).
    pub fn submit_store_to(&self, link: usize, bytes: u64) -> JobId {
        let link = link.min(self.links.len() - 1);
        let l = &self.links[link];
        let now = self.clock.now();
        let eff_bps = match &self.bus {
            Some(bus) => l.write_bps.min(bus.write_bps),
            None => l.write_bps,
        };
        let overhead = *self.store_overhead.lock();
        let id = {
            let mut q = l.writes.lock();
            let prev_end = q
                .jobs
                .iter()
                .rev()
                .find(|j| !j.cancelled)
                .map(|j| j.end)
                .unwrap_or(SimTime::ZERO);
            let start = now.max(prev_end);
            let dur_secs = overhead + bytes as f64 * q.slowdown / eff_bps;
            let end = start.plus_secs(dur_secs);
            q.jobs.push(WriteJob {
                bytes,
                submit: now,
                start,
                end,
                dur_secs,
                cancelled: false,
            });
            JobId {
                link,
                idx: q.jobs.len() - 1,
            }
        };
        if let Some(bus) = &self.bus {
            bus.order.lock().push(id);
            self.reflow_bus(bus);
        }
        id
    }

    /// Reschedules every live store across every link in global
    /// submission order: each job starts when the shared bus frees up
    /// (which also covers its own link — the bus serialises everything).
    fn reflow_bus(&self, bus: &BusState) {
        let order = bus.order.lock();
        // ssdtrain-lint: allow(no-alloc-hot-loop): guard vector bounded by
        // the link count (a handful), rebuilt once per bus reflow
        let mut queues: Vec<_> = self.links.iter().map(|l| l.writes.lock()).collect();
        let mut prev_end = SimTime::ZERO;
        for id in order.iter() {
            let j = &mut queues[id.link].jobs[id.idx];
            if j.cancelled {
                continue;
            }
            j.start = j.submit.max(prev_end);
            j.end = j.start.plus_secs(j.dur_secs);
            prev_end = j.end;
        }
    }

    /// Current scheduled completion time of a store (may move earlier if
    /// queued jobs ahead of it on the same link are cancelled).
    ///
    /// # Panics
    /// Panics on an unknown or cancelled job.
    pub fn store_end(&self, job: JobId) -> SimTime {
        self.store_span(job).1
    }

    /// Current scheduled `(start, end)` interval of a store — the span a
    /// trace records when the store commits.
    ///
    /// # Panics
    /// Panics on an unknown or cancelled job.
    pub fn store_span(&self, job: JobId) -> (SimTime, SimTime) {
        let q = self.links[job.link].writes.lock();
        let j = &q.jobs[job.idx];
        assert!(!j.cancelled, "store_span of a cancelled job");
        (j.start, j.end)
    }

    /// Whether the store has started transferring by `now`.
    pub fn store_started(&self, job: JobId, now: SimTime) -> bool {
        let q = self.links[job.link].writes.lock();
        let j = &q.jobs[job.idx];
        !j.cancelled && j.start <= now
    }

    /// Cancels a store if it has not started by `now`; returns `true` on
    /// success (the adaptive-offloading check a store worker performs
    /// before writing a forwarded tensor).
    pub fn try_cancel_store(&self, job: JobId, now: SimTime) -> bool {
        {
            let mut q = self.links[job.link].writes.lock();
            let j = &mut q.jobs[job.idx];
            if j.cancelled || j.start <= now {
                return false;
            }
            j.cancelled = true;
            if self.bus.is_none() {
                q.reflow();
            }
        }
        if let Some(bus) = &self.bus {
            self.reflow_bus(bus);
        }
        true
    }

    /// Submits a load of `bytes` on link 0 at the current time.
    pub fn submit_load(&self, bytes: u64) -> SimTime {
        self.submit_load_from(0, bytes)
    }

    /// Submits a load of `bytes` on the tier link `link` at the current
    /// time; returns the time the data is resident in GPU memory. An
    /// out-of-range link is clamped to the last one.
    pub fn submit_load_from(&self, link: usize, bytes: u64) -> SimTime {
        let link = link.min(self.links.len() - 1);
        let (start, end) = self.links[link].reads.submit(self.clock.now(), bytes);
        *self.links[link].read_busy_secs.lock() += end.as_secs() - start.as_secs();
        self.trace()
            .span_bytes(TraceCategory::Load, "load", start, end, bytes);
        end
    }

    /// When the last scheduled write across every link finishes.
    pub fn writes_drain_at(&self) -> SimTime {
        (0..self.links.len())
            .map(|l| self.writes_drain_at_on(l))
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// When the last scheduled write on one tier link finishes
    /// ([`SimTime::ZERO`] when the queue is empty or out of range).
    pub fn writes_drain_at_on(&self, link: usize) -> SimTime {
        self.links
            .get(link)
            .map(|l| {
                l.writes
                    .lock()
                    .jobs
                    .iter()
                    .filter(|j| !j.cancelled)
                    .map(|j| j.end)
                    .fold(SimTime::ZERO, SimTime::max)
            })
            .unwrap_or(SimTime::ZERO)
    }

    /// The name of one tier link (empty when out of range).
    pub fn link_name(&self, link: usize) -> &str {
        self.links.get(link).map(|l| l.name.as_str()).unwrap_or("")
    }

    /// The shared write bus bandwidth, if one is configured.
    pub fn bus_write_bps(&self) -> Option<f64> {
        self.bus.as_ref().map(|b| b.write_bps)
    }

    /// Total bytes actually written across every link (cancelled jobs
    /// excluded).
    pub fn bytes_written(&self) -> u64 {
        (0..self.links.len())
            .map(|l| self.bytes_written_on(l))
            .sum()
    }

    /// Bytes written on one tier link (cancelled jobs excluded).
    pub fn bytes_written_on(&self, link: usize) -> u64 {
        self.links
            .get(link)
            .map(|l| {
                l.writes
                    .lock()
                    .jobs
                    .iter()
                    .filter(|j| !j.cancelled)
                    .map(|j| j.bytes)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total bytes read back across every link.
    pub fn bytes_read(&self) -> u64 {
        (0..self.links.len()).map(|l| self.bytes_read_on(l)).sum()
    }

    /// Bytes read back on one tier link.
    pub fn bytes_read_on(&self, link: usize) -> u64 {
        self.links
            .get(link)
            .map(|l| l.reads.bytes_total())
            .unwrap_or(0)
    }

    /// Seconds the write directions were busy, summed over links.
    pub fn write_busy_secs(&self) -> f64 {
        (0..self.links.len())
            .map(|l| self.write_busy_secs_on(l))
            .sum()
    }

    /// Seconds one tier link's write direction was busy this step
    /// (cancelled jobs excluded).
    pub fn write_busy_secs_on(&self, link: usize) -> f64 {
        self.links
            .get(link)
            .map(|l| {
                l.writes
                    .lock()
                    .jobs
                    .iter()
                    .filter(|j| !j.cancelled)
                    .map(|j| j.dur_secs)
                    .sum::<f64>()
            })
            .unwrap_or(0.0)
    }

    /// Seconds one tier link's read direction was busy this step.
    pub fn read_busy_secs_on(&self, link: usize) -> f64 {
        self.links
            .get(link)
            .map(|l| *l.read_busy_secs.lock())
            .unwrap_or(0.0)
    }

    /// Clears all job state on every link (new measured step). An
    /// injected slowdown persists; see [`IoEngine::throttle`].
    pub fn reset(&self) {
        for link in self.links.iter() {
            link.writes.lock().jobs.clear();
            link.reads.reset();
            *link.read_busy_secs.lock() = 0.0;
        }
        if let Some(bus) = &self.bus {
            bus.order.lock().clear();
        }
    }
}

impl std::fmt::Debug for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine")
            .field("links", &self.links.len())
            .field("write_gbps", &(self.write_bps() / 1e9))
            .field("read_gbps", &(self.read_bps() / 1e9))
            .field("bytes_written", &self.bytes_written())
            .field("bytes_read", &self.bytes_read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (SimClock, IoEngine) {
        let clock = SimClock::new();
        let io = IoEngine::new(clock.clone(), 1e9, 2e9);
        (clock, io)
    }

    #[test]
    fn stores_run_fifo() {
        let (_c, io) = engine();
        let a = io.submit_store(1_000_000_000); // 1 s
        let b = io.submit_store(500_000_000); // queued behind
        assert_eq!(io.store_end(a).as_secs(), 1.0);
        assert_eq!(io.store_end(b).as_secs(), 1.5);
    }

    #[test]
    fn cancelling_a_queued_store_reflows_the_queue() {
        let (_c, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        let c = io.submit_store(1_000_000_000);
        assert_eq!(io.store_end(c).as_secs(), 3.0);
        // b has not started at t=0.5.
        assert!(io.try_cancel_store(b, SimTime::from_secs(0.5)));
        assert_eq!(io.store_end(c).as_secs(), 2.0);
        assert_eq!(io.bytes_written(), 2_000_000_000);
    }

    #[test]
    fn started_stores_cannot_be_cancelled() {
        let (_c, io) = engine();
        let a = io.submit_store(1_000_000_000);
        assert!(io.store_started(a, SimTime::from_secs(0.1)));
        assert!(!io.try_cancel_store(a, SimTime::from_secs(0.1)));
        assert_eq!(io.bytes_written(), 1_000_000_000);
    }

    #[test]
    fn loads_use_the_read_channel() {
        let (clock, io) = engine();
        clock.advance_by(1.0);
        let ready = io.submit_load(2_000_000_000); // 1 s at 2 GB/s
        assert_eq!(ready.as_secs(), 2.0);
        assert_eq!(io.bytes_read(), 2_000_000_000);
    }

    #[test]
    fn writes_overlap_reads_full_duplex() {
        let (_c, io) = engine();
        io.submit_store(1_000_000_000);
        let ready = io.submit_load(2_000_000_000);
        // Read finishes at 1 s even though a write occupies 0..1 s.
        assert_eq!(ready.as_secs(), 1.0);
    }

    #[test]
    fn drain_time_tracks_last_live_job() {
        let (_c, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        assert_eq!(io.writes_drain_at().as_secs(), 2.0);
        io.try_cancel_store(b, SimTime::ZERO);
        assert_eq!(io.writes_drain_at().as_secs(), 1.0);
    }

    #[test]
    fn throttle_stretches_queued_and_inflight_writes() {
        let (clock, io) = engine();
        let a = io.submit_store(1_000_000_000); // scheduled 0..1 s
        let b = io.submit_store(1_000_000_000); // scheduled 1..2 s
        clock.advance_by(0.5);
        io.throttle(2.0);
        // a: 0.5 s done + 0.5 s remaining at half speed = ends at 1.5 s.
        assert_eq!(io.store_end(a).as_secs(), 1.5);
        // b: not started, takes 2 s, queued behind a.
        assert_eq!(io.store_end(b).as_secs(), 3.5);
        assert_eq!(io.effective_write_bps(), 0.5e9);
        // Future reads also slow: 2 GB at an effective 1 GB/s.
        let ready = io.submit_load(2_000_000_000);
        assert_eq!(ready.as_secs(), 2.5);
    }

    #[test]
    fn cancellation_after_throttle_keeps_fifo_and_pricing() {
        let (clock, io) = engine();
        let _a = io.submit_store(1_000_000_000);
        let b = io.submit_store(1_000_000_000);
        let c = io.submit_store(1_000_000_000);
        clock.advance_by(0.5);
        io.throttle(2.0);
        assert_eq!(io.store_end(c).as_secs(), 5.5);
        // Cancelling b pulls c forward without re-pricing a's history.
        assert!(io.try_cancel_store(b, clock.now()));
        assert_eq!(io.store_end(c).as_secs(), 3.5);
        let busy = io.write_busy_secs();
        assert!((busy - 3.5).abs() < 1e-9, "busy {busy}");
    }

    #[test]
    fn idle_write_queue_starts_at_submit_time() {
        let (clock, io) = engine();
        clock.advance_by(3.0);
        let a = io.submit_store(1_000_000_000);
        assert_eq!(io.store_end(a).as_secs(), 4.0);
    }

    fn tiered_engine() -> (SimClock, IoEngine) {
        let clock = SimClock::new();
        let io = IoEngine::tiered(
            clock.clone(),
            vec![
                TierLink::new("dram", 2e9, 2e9),
                TierLink::new("ssd", 1e9, 1e9),
            ],
        );
        (clock, io)
    }

    #[test]
    fn tier_links_queue_independently() {
        let (_c, io) = tiered_engine();
        let a = io.submit_store_to(0, 2_000_000_000); // 1 s on dram
        let b = io.submit_store_to(1, 1_000_000_000); // 1 s on ssd
        let c = io.submit_store_to(0, 2_000_000_000); // queues behind a only
        assert_eq!(io.store_end(a).as_secs(), 1.0);
        assert_eq!(io.store_end(b).as_secs(), 1.0);
        assert_eq!(io.store_end(c).as_secs(), 2.0);
        assert_eq!(io.bytes_written_on(0), 4_000_000_000);
        assert_eq!(io.bytes_written_on(1), 1_000_000_000);
        assert_eq!(io.bytes_written(), 5_000_000_000);
    }

    #[test]
    fn tier_loads_price_on_their_own_link() {
        let (_c, io) = tiered_engine();
        let dram_ready = io.submit_load_from(0, 2_000_000_000); // 1 s at 2 GB/s
        let ssd_ready = io.submit_load_from(1, 2_000_000_000); // 2 s at 1 GB/s
        assert_eq!(dram_ready.as_secs(), 1.0);
        assert_eq!(ssd_ready.as_secs(), 2.0);
        assert_eq!(io.bytes_read_on(0), 2_000_000_000);
        assert_eq!(io.bytes_read_on(1), 2_000_000_000);
    }

    #[test]
    fn aggregates_sum_over_links() {
        let (_c, io) = tiered_engine();
        assert_eq!(io.link_count(), 2);
        assert_eq!(io.write_bps(), 3e9);
        assert_eq!(io.read_bps(), 3e9);
        assert_eq!(io.write_bps_of(1), 1e9);
        assert_eq!(io.read_bps_of(0), 2e9);
        io.submit_store_to(0, 2_000_000_000);
        io.submit_store_to(1, 1_000_000_000);
        assert_eq!(io.write_busy_secs(), 2.0);
        io.reset();
        assert_eq!(io.bytes_written(), 0);
    }

    #[test]
    fn throttle_degrades_every_link() {
        let (_c, io) = tiered_engine();
        io.throttle(2.0);
        assert_eq!(io.effective_write_bps(), 1.5e9);
        let a = io.submit_store_to(1, 1_000_000_000); // 2 s at slowed 0.5 GB/s
        assert_eq!(io.store_end(a).as_secs(), 2.0);
    }

    #[test]
    fn out_of_range_link_clamps_to_last() {
        let (_c, io) = tiered_engine();
        let a = io.submit_store_to(99, 1_000_000_000);
        assert_eq!(io.store_end(a).as_secs(), 1.0); // priced on the ssd link
        assert_eq!(io.bytes_written_on(1), 1_000_000_000);
    }

    fn bus_engine() -> (SimClock, IoEngine) {
        let clock = SimClock::new();
        let io = IoEngine::tiered_with_bus(
            clock.clone(),
            vec![
                TierLink::new("dram", 2e9, 2e9),
                TierLink::new("ssd", 1e9, 1e9),
            ],
            2e9,
        );
        (clock, io)
    }

    #[test]
    fn bus_serialises_stores_across_links() {
        let (_c, io) = bus_engine();
        let a = io.submit_store_to(0, 2_000_000_000); // 0..1 s at the bus rate
        let b = io.submit_store_to(1, 1_000_000_000); // bus busy until 1 s
        let c = io.submit_store_to(0, 2_000_000_000); // behind b on the bus
        assert_eq!(io.store_end(a).as_secs(), 1.0);
        assert_eq!(io.store_end(b).as_secs(), 2.0);
        assert_eq!(io.store_end(c).as_secs(), 3.0);
        // Per-link drain reflects the bus schedule, not link-local FIFO.
        assert_eq!(io.writes_drain_at_on(0).as_secs(), 3.0);
        assert_eq!(io.writes_drain_at_on(1).as_secs(), 2.0);
        assert_eq!(io.bus_write_bps(), Some(2e9));
    }

    #[test]
    fn bus_jobs_pay_the_slower_of_link_and_bus() {
        let (_c, io) = bus_engine();
        // The ssd link (1 GB/s) is slower than the bus (2 GB/s).
        let a = io.submit_store_to(1, 1_000_000_000);
        assert_eq!(io.store_end(a).as_secs(), 1.0);
        assert_eq!(io.write_busy_secs_on(1), 1.0);
    }

    #[test]
    fn bus_cancellation_reflows_the_global_order() {
        let (_c, io) = bus_engine();
        let _a = io.submit_store_to(0, 2_000_000_000); // 0..1 s
        let b = io.submit_store_to(1, 1_000_000_000); // 1..2 s
        let c = io.submit_store_to(0, 2_000_000_000); // 2..3 s
        assert!(io.try_cancel_store(b, SimTime::from_secs(0.5)));
        // c pulls forward across the freed bus slot.
        assert_eq!(io.store_end(c).as_secs(), 2.0);
        assert_eq!(io.bytes_written(), 4_000_000_000);
    }

    #[test]
    fn bus_throttle_stretches_the_serialised_schedule() {
        let (clock, io) = bus_engine();
        let a = io.submit_store_to(0, 2_000_000_000); // 0..1 s
        let b = io.submit_store_to(1, 1_000_000_000); // 1..2 s
        clock.advance_by(0.5);
        io.throttle(2.0);
        // a: half done, remaining half at half speed → ends at 1.5 s.
        assert_eq!(io.store_end(a).as_secs(), 1.5);
        // b: not started, 2 s at the slowed rate, behind a on the bus.
        assert_eq!(io.store_end(b).as_secs(), 3.5);
    }

    #[test]
    fn single_link_bus_matches_the_flat_engine() {
        let clock = SimClock::new();
        let flat = IoEngine::new(clock.clone(), 1e9, 2e9);
        let bus = IoEngine::tiered_with_bus(
            clock.clone(),
            vec![TierLink::new("offload", 1e9, 2e9)],
            25e9,
        );
        for io in [&flat, &bus] {
            let a = io.submit_store(1_000_000_000);
            let b = io.submit_store(500_000_000);
            io.try_cancel_store(b, SimTime::from_secs(0.5));
            assert_eq!(io.store_end(a).as_secs(), 1.0);
            assert_eq!(io.writes_drain_at().as_secs(), 1.0);
            assert_eq!(io.bytes_written(), 1_000_000_000);
        }
    }

    #[test]
    fn store_job_overhead_prices_per_job_not_per_byte() {
        let (_c, io) = engine();
        io.set_store_job_overhead(0.25);
        let a = io.submit_store(1_000_000_000); // 0.25 + 1.0 s
        let b = io.submit_store(1_000_000_000); // queued, same cost
        assert_eq!(io.store_end(a).as_secs(), 1.25);
        assert_eq!(io.store_end(b).as_secs(), 2.5);
        // One coalesced job moves the same bytes for one overhead.
        io.reset();
        let c = io.submit_store(2_000_000_000);
        assert_eq!(io.store_end(c).as_secs(), 2.25);
        assert_eq!(io.store_job_overhead_secs(), 0.25);
    }

    #[test]
    fn store_job_overhead_survives_cancellation_reflow() {
        let (_c, io) = engine();
        io.set_store_job_overhead(0.5);
        let _a = io.submit_store(1_000_000_000); // 0 .. 1.5 s
        let b = io.submit_store(1_000_000_000); // 1.5 .. 3.0 s
        let c = io.submit_store(1_000_000_000); // 3.0 .. 4.5 s
        assert!(io.try_cancel_store(b, SimTime::from_secs(0.5)));
        // c keeps its 0.5 s overhead after pulling forward.
        assert_eq!(io.store_end(c).as_secs(), 3.0);
    }

    #[test]
    fn per_link_busy_accounting_tracks_reads() {
        let (_c, io) = tiered_engine();
        io.submit_load_from(0, 2_000_000_000); // 1 s at 2 GB/s
        io.submit_load_from(1, 1_000_000_000); // 1 s at 1 GB/s
        assert_eq!(io.read_busy_secs_on(0), 1.0);
        assert_eq!(io.read_busy_secs_on(1), 1.0);
        assert_eq!(io.link_name(0), "dram");
        assert_eq!(io.link_name(1), "ssd");
        io.reset();
        assert_eq!(io.read_busy_secs_on(0), 0.0);
    }
}
