//! The placement layer: *whether* a saved tensor leaves GPU memory.
//!
//! Extracted from `TensorCache::pack` so the decision sequence of the
//! paper's Algorithm 2 (lines 12 and 15) is a pure, testable function
//! instead of control flow buried in record bookkeeping. The policy
//! answers **whether** a tensor is offload-eligible; **where** it lands
//! is the [`crate::TierStack`]'s admission decision
//! ([`crate::TierStack::reserve`]), and identity deduplication stays in
//! the cache because it needs the record table.
//!
//! The decision order is observable (it drives the `kept` counter) and
//! must not change: parameter → below-threshold → backward-phase or
//! kept-module.

use crate::config::TensorCacheConfig;
use serde::{Deserialize, Serialize};

/// *What kind* of tensor is leaving GPU memory.
///
/// The paper offloads activations only; GreedySnake and ZeRO-Infinity
/// extend the same store/load machinery to gradients and optimizer
/// state — the dominant capacity term (12–16 bytes/param vs 2 for
/// weights). Every placement decision, tier admission and stats counter
/// is keyed by this class so the planner can trade activation vs state
/// placement on one modeled critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OffloadClass {
    /// Forward activations saved for backward (the paper's subject).
    Activation,
    /// Accumulated gradients, held between backward and the optimizer
    /// update.
    Gradient,
    /// Optimizer state (momentum/variance), live across steps.
    OptimizerState,
}

impl OffloadClass {
    /// All classes, in stats/trace-lane order.
    pub const ALL: [OffloadClass; 3] = [
        OffloadClass::Activation,
        OffloadClass::Gradient,
        OffloadClass::OptimizerState,
    ];

    /// Stable lowercase label used in stats, trace lane names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            OffloadClass::Activation => "activation",
            OffloadClass::Gradient => "gradient",
            OffloadClass::OptimizerState => "optimizer_state",
        }
    }

    /// Index into per-class counter arrays ([`OffloadClass::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            OffloadClass::Activation => 0,
            OffloadClass::Gradient => 1,
            OffloadClass::OptimizerState => 2,
        }
    }
}

impl std::fmt::Display for OffloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a tensor stays resident instead of being offloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// The tensor is (a view of) a registered parameter
    /// (Algorithm 1 lines 3–4).
    Parameter,
    /// Fewer elements than `min_offload_numel` (Algorithm 2 line 12).
    BelowThreshold,
    /// Saved during backward/recompute — offloading it would thrash
    /// (Algorithm 2 line 15).
    BackwardPhase,
    /// The adaptive plan keeps the innermost open module resident
    /// (Section 3.3.3, "keep the tail").
    KeptModule,
    /// Every placement-eligible tier was full; the stack refused
    /// admission and the cache keeps the tensor resident.
    TiersFull,
}

impl KeepReason {
    /// Whether this keep increments [`crate::OffloadStats::kept`] —
    /// parameters and small tensors were never offload candidates and
    /// are not counted, exactly as the pre-refactor `pack` behaved.
    pub fn counts_in_stats(self) -> bool {
        matches!(
            self,
            KeepReason::BackwardPhase | KeepReason::KeptModule | KeepReason::TiersFull
        )
    }
}

/// The placement decision for one saved tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Leave the tensor on the graph.
    Keep(KeepReason),
    /// Offload-eligible: the cache deduplicates, then asks the
    /// [`crate::TierStack`] to admit the bytes.
    Offload,
}

impl Placement {
    /// Whether the tensor stays resident.
    pub fn is_keep(self) -> bool {
        matches!(self, Placement::Keep(_))
    }
}

/// Everything the policy needs to know about one saved tensor — the
/// cache gathers these from its record state under its own lock and
/// hands the policy a plain value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementQuery {
    /// What kind of tensor this is; non-activation classes skip the
    /// activation-lifecycle keeps (backward-phase, kept-module).
    pub class: OffloadClass,
    /// The tensor shares storage with a registered parameter.
    pub is_parameter: bool,
    /// Element count.
    pub numel: usize,
    /// The autograd engine is in backward / recompute.
    pub in_backward: bool,
    /// The innermost open module is kept by the adaptive plan (already
    /// `false` during profiling steps, which offload everything).
    pub module_kept: bool,
}

/// Decides whether a saved tensor leaves GPU memory.
///
/// ```
/// use ssdtrain::{KeepReason, OffloadClass, Placement, PlacementPolicy, PlacementQuery};
///
/// let policy = PlacementPolicy::new(1024);
/// let q = PlacementQuery {
///     class: OffloadClass::Activation,
///     is_parameter: false,
///     numel: 64,
///     in_backward: false,
///     module_kept: false,
/// };
/// assert_eq!(policy.decide(&q), Placement::Keep(KeepReason::BelowThreshold));
/// assert_eq!(
///     policy.decide(&PlacementQuery { numel: 4096, ..q }),
///     Placement::Offload
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPolicy {
    min_offload_numel: usize,
}

impl PlacementPolicy {
    /// A policy offloading tensors of at least `min_offload_numel`
    /// elements.
    pub fn new(min_offload_numel: usize) -> PlacementPolicy {
        PlacementPolicy { min_offload_numel }
    }

    /// The policy a [`TensorCacheConfig`] implies.
    pub fn from_config(config: &TensorCacheConfig) -> PlacementPolicy {
        PlacementPolicy::new(config.min_offload_numel)
    }

    /// The offload threshold in elements.
    pub fn min_offload_numel(&self) -> usize {
        self.min_offload_numel
    }

    /// Algorithm 2's keep/offload sequence, in its original order.
    ///
    /// Gradients and optimizer state share the parameter and threshold
    /// keeps, but skip the two activation-lifecycle conditions
    /// (backward-phase, kept-module): their live ranges are bounded by
    /// the optimizer schedule, not the autograd phase, so Algorithm 2's
    /// thrash guards do not apply.
    pub fn decide(&self, query: &PlacementQuery) -> Placement {
        if query.is_parameter {
            return Placement::Keep(KeepReason::Parameter);
        }
        if query.numel < self.min_offload_numel {
            return Placement::Keep(KeepReason::BelowThreshold);
        }
        if query.class == OffloadClass::Activation {
            if query.in_backward {
                return Placement::Keep(KeepReason::BackwardPhase);
            }
            if query.module_kept {
                return Placement::Keep(KeepReason::KeptModule);
            }
        }
        Placement::Offload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> PlacementQuery {
        PlacementQuery {
            class: OffloadClass::Activation,
            is_parameter: false,
            numel: 1 << 20,
            in_backward: false,
            module_kept: false,
        }
    }

    #[test]
    fn decision_order_matches_algorithm_2() {
        let p = PlacementPolicy::new(1024);
        // A parameter wins over every other reason.
        assert_eq!(
            p.decide(&PlacementQuery {
                class: OffloadClass::Activation,
                is_parameter: true,
                numel: 1,
                in_backward: true,
                module_kept: true,
            }),
            Placement::Keep(KeepReason::Parameter)
        );
        // Threshold beats phase.
        assert_eq!(
            p.decide(&PlacementQuery {
                numel: 8,
                in_backward: true,
                ..q()
            }),
            Placement::Keep(KeepReason::BelowThreshold)
        );
        // Phase beats the plan.
        assert_eq!(
            p.decide(&PlacementQuery {
                in_backward: true,
                module_kept: true,
                ..q()
            }),
            Placement::Keep(KeepReason::BackwardPhase)
        );
        assert_eq!(
            p.decide(&PlacementQuery {
                module_kept: true,
                ..q()
            }),
            Placement::Keep(KeepReason::KeptModule)
        );
        assert_eq!(p.decide(&q()), Placement::Offload);
    }

    #[test]
    fn only_policy_keeps_count_in_stats() {
        assert!(!KeepReason::Parameter.counts_in_stats());
        assert!(!KeepReason::BelowThreshold.counts_in_stats());
        assert!(KeepReason::BackwardPhase.counts_in_stats());
        assert!(KeepReason::KeptModule.counts_in_stats());
        assert!(KeepReason::TiersFull.counts_in_stats());
    }

    #[test]
    fn from_config_reads_the_threshold() {
        let cfg = TensorCacheConfig {
            min_offload_numel: 777,
            ..TensorCacheConfig::default()
        };
        let p = PlacementPolicy::from_config(&cfg);
        assert_eq!(p.min_offload_numel(), 777);
        assert!(p.decide(&PlacementQuery { numel: 776, ..q() }).is_keep());
    }

    #[test]
    fn state_classes_skip_the_activation_lifecycle_keeps() {
        let p = PlacementPolicy::new(1024);
        for class in [OffloadClass::Gradient, OffloadClass::OptimizerState] {
            // Backward-phase and kept-module do not apply to state.
            assert_eq!(
                p.decide(&PlacementQuery {
                    class,
                    in_backward: true,
                    module_kept: true,
                    ..q()
                }),
                Placement::Offload
            );
            // Parameter and threshold keeps still do.
            assert!(p
                .decide(&PlacementQuery {
                    class,
                    is_parameter: true,
                    ..q()
                })
                .is_keep());
            assert_eq!(
                p.decide(&PlacementQuery {
                    class,
                    numel: 8,
                    ..q()
                }),
                Placement::Keep(KeepReason::BelowThreshold)
            );
        }
    }

    #[test]
    fn class_labels_are_stable() {
        assert_eq!(OffloadClass::Activation.label(), "activation");
        assert_eq!(OffloadClass::Gradient.label(), "gradient");
        assert_eq!(OffloadClass::OptimizerState.label(), "optimizer_state");
        for (i, class) in OffloadClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(format!("{class}"), class.label());
        }
    }
}
