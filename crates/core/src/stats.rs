//! Offloading statistics collected per training step.

use crate::placement::OffloadClass;
use crate::tier::TierCounters;
use serde::{Deserialize, Serialize};
use ssdtrain_trace::MetricsRegistry;

/// Per-[`OffloadClass`] traffic split: how much of the step's offload
/// I/O was activations vs gradients vs optimizer state. Every byte in
/// [`OffloadStats::offloaded_bytes`] / `reloaded_bytes` is attributed to
/// exactly one class (the conservation invariant the proptest suite
/// pins).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassCounters {
    /// The class label ([`OffloadClass::label`]).
    pub class: String,
    /// Bytes submitted to store queues for this class (net of
    /// cancellations, like the global counter).
    pub offloaded_bytes: u64,
    /// Bytes reloaded from the tiers for this class.
    pub reloaded_bytes: u64,
    /// Store jobs submitted for this class.
    pub stores: u64,
    /// Load jobs issued for this class.
    pub loads: u64,
}

/// Counters the tensor cache maintains; Table 4 and the ablation benches
/// read these.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OffloadStats {
    /// Bytes submitted to the store queue (the paper's "offloaded
    /// amount").
    pub offloaded_bytes: u64,
    /// Store jobs submitted.
    pub store_jobs: u64,
    /// Bytes whose re-save was avoided by identity deduplication.
    pub dedup_avoided_bytes: u64,
    /// Saves answered by an existing record (dedup hits).
    pub dedup_hits: u64,
    /// Unpacks served by data forwarding (store still in flight).
    pub forwarded: u64,
    /// Bytes forwarded.
    pub forwarded_bytes: u64,
    /// Queued store jobs cancelled after forwarding.
    pub cancelled_stores: u64,
    /// Bytes of cancelled stores (write traffic avoided).
    pub cancelled_bytes: u64,
    /// Reloads issued as prefetches.
    pub prefetches: u64,
    /// Reloads issued synchronously at unpack (prefetch missed).
    pub sync_loads: u64,
    /// Bytes reloaded from the offload target.
    pub reloaded_bytes: u64,
    /// Tensors kept resident by policy (parameter, small, kept module,
    /// backward-phase save).
    pub kept: u64,
    /// Total simulated seconds the GPU stalled waiting for reloads — the
    /// exposed I/O latency; ≈0 when overlap is perfect (paper Q1).
    pub stall_secs: f64,
    /// Simulated seconds the step stalled at stage barriers waiting for
    /// store queues to drain — the write-direction exposure that makes
    /// dram, ssd and tiered backends report different step times; 0 when
    /// every store hides inside its stage's compute.
    #[serde(default)]
    pub store_stall_secs: f64,
    /// Stores the offload target failed (recovery then applied per
    /// [`crate::RecoveryPolicy`]).
    pub store_failures: u64,
    /// Extra read attempts made while recovering failed loads.
    pub load_retries: u64,
    /// Bytes re-routed to the fallback target after the primary target
    /// refused them.
    pub fallback_bytes: u64,
    /// Bytes kept in GPU memory because their store failed and recovery
    /// absorbed it.
    pub kept_resident_bytes: u64,
    /// Bytes admitted to a slower tier because a faster placement tier
    /// was full at pack time.
    pub spilled_bytes: u64,
    /// Bytes kept resident because every placement tier was full (the
    /// [`crate::TierStack`] refused admission).
    pub placement_kept_bytes: u64,
    /// Payload bytes staged through the pinned [`BufferArena`] this
    /// step (slab acquisitions).
    ///
    /// [`BufferArena`]: ssdtrain_simhw::BufferArena
    #[serde(default)]
    pub arena_acquired_bytes: u64,
    /// Payload bytes returned to the arena this step. The arena's
    /// conservation invariant is `acquired == released + in_use` over
    /// its own cumulative counters; per step the gap is bytes still
    /// staged across the step boundary.
    #[serde(default)]
    pub arena_released_bytes: u64,
    /// Peak bytes simultaneously staged in the arena this step — the
    /// pinned host memory the configuration really needs.
    #[serde(default)]
    pub arena_high_water_bytes: u64,
    /// Total pinned footprint of the arena (sum of all slab size
    /// classes ever created; grows only when reuse misses).
    #[serde(default)]
    pub arena_footprint_bytes: u64,
    /// Slab acquisitions served from the free lists instead of growing
    /// the footprint (cumulative).
    #[serde(default)]
    pub arena_slab_reuses: u64,
    /// Coalesced segments sealed and submitted this step (each is one
    /// store job and one device write operation).
    #[serde(default)]
    pub coalesce_segments: u64,
    /// Tensor bytes that travelled inside coalesced segments. Always
    /// `<= offloaded_bytes`; equality means every store coalesced.
    #[serde(default)]
    pub coalesced_bytes: u64,
    /// Members evicted from an open (unsealed) segment because they
    /// were consumed or released before the segment filled — served
    /// from memory like a forwarding hit.
    #[serde(default)]
    pub coalesce_evictions: u64,
    /// Backward prefetch groups issued (group-based double buffering).
    #[serde(default)]
    pub prefetch_groups: u64,
    /// Bytes covered by issued prefetch groups.
    #[serde(default)]
    pub prefetch_group_bytes: u64,
    /// Per-tier traffic, front tier first (empty until the cache takes
    /// its first snapshot).
    pub tiers: Vec<TierCounters>,
    /// Per-class traffic split in [`OffloadClass::ALL`] order
    /// (activation, gradient, optimizer_state). Empty in a default
    /// struct; [`OffloadStats::class_mut`] materialises all three.
    #[serde(default)]
    pub classes: Vec<ClassCounters>,
}

impl OffloadStats {
    /// The counters for `class`, materialising the full
    /// [`OffloadClass::ALL`]-ordered vector on first touch so exported
    /// stats always show all three lanes once any class moves bytes.
    pub fn class_mut(&mut self, class: OffloadClass) -> &mut ClassCounters {
        if self.classes.is_empty() {
            self.classes = OffloadClass::ALL
                .iter()
                .map(|c| ClassCounters {
                    class: c.label().to_owned(),
                    ..ClassCounters::default()
                })
                // ssdtrain-lint: allow(no-alloc-hot-loop): one-time lazy init
                // of the class table; later calls take the index fast path
                .collect();
        }
        &mut self.classes[class.index()]
    }

    /// The counters for `class`, if any class has moved bytes this step.
    pub fn class(&self, class: OffloadClass) -> Option<&ClassCounters> {
        self.classes.get(class.index())
    }
    /// Sum of write and read traffic to the offload target.
    pub fn io_bytes(&self) -> u64 {
        self.offloaded_bytes + self.reloaded_bytes
    }

    /// Whether recovery machinery engaged this step (any failed store,
    /// retried load, fallback write or failure-kept tensor).
    pub fn degraded(&self) -> bool {
        self.store_failures > 0
            || self.load_retries > 0
            || self.fallback_bytes > 0
            || self.kept_resident_bytes > 0
    }

    /// Accumulates every counter into `registry` under the `offload.`
    /// namespace (stall time as a per-step histogram observation). This
    /// is how the ad-hoc stats struct is subsumed by the unified
    /// [`MetricsRegistry`] surface: call once per completed step.
    pub fn export_to(&self, registry: &MetricsRegistry) {
        registry.inc_counter("offload.offloaded_bytes", self.offloaded_bytes);
        registry.inc_counter("offload.store_jobs", self.store_jobs);
        registry.inc_counter("offload.dedup_avoided_bytes", self.dedup_avoided_bytes);
        registry.inc_counter("offload.dedup_hits", self.dedup_hits);
        registry.inc_counter("offload.forwarded", self.forwarded);
        registry.inc_counter("offload.forwarded_bytes", self.forwarded_bytes);
        registry.inc_counter("offload.cancelled_stores", self.cancelled_stores);
        registry.inc_counter("offload.cancelled_bytes", self.cancelled_bytes);
        registry.inc_counter("offload.prefetches", self.prefetches);
        registry.inc_counter("offload.sync_loads", self.sync_loads);
        registry.inc_counter("offload.reloaded_bytes", self.reloaded_bytes);
        registry.inc_counter("offload.kept", self.kept);
        registry.inc_counter("offload.store_failures", self.store_failures);
        registry.inc_counter("offload.load_retries", self.load_retries);
        registry.inc_counter("offload.fallback_bytes", self.fallback_bytes);
        registry.inc_counter("offload.kept_resident_bytes", self.kept_resident_bytes);
        registry.inc_counter("offload.spilled_bytes", self.spilled_bytes);
        registry.inc_counter("offload.placement_kept_bytes", self.placement_kept_bytes);
        registry.inc_counter("offload.arena_acquired_bytes", self.arena_acquired_bytes);
        registry.inc_counter("offload.arena_released_bytes", self.arena_released_bytes);
        registry.inc_counter(
            "offload.arena_high_water_bytes",
            self.arena_high_water_bytes,
        );
        registry.inc_counter("offload.arena_footprint_bytes", self.arena_footprint_bytes);
        registry.inc_counter("offload.arena_slab_reuses", self.arena_slab_reuses);
        registry.inc_counter("offload.coalesce_segments", self.coalesce_segments);
        registry.inc_counter("offload.coalesced_bytes", self.coalesced_bytes);
        registry.inc_counter("offload.coalesce_evictions", self.coalesce_evictions);
        registry.inc_counter("offload.prefetch_groups", self.prefetch_groups);
        registry.inc_counter("offload.prefetch_group_bytes", self.prefetch_group_bytes);
        for (idx, tier) in self.tiers.iter().enumerate() {
            let prefix = format!("offload.tier{idx}.{}", tier.name);
            registry.inc_counter(&format!("{prefix}.bytes_written"), tier.bytes_written);
            registry.inc_counter(&format!("{prefix}.bytes_read"), tier.bytes_read);
            registry.inc_counter(&format!("{prefix}.stores"), tier.stores);
            registry.inc_counter(&format!("{prefix}.loads"), tier.loads);
            registry.inc_counter(&format!("{prefix}.spilled_in_bytes"), tier.spilled_in_bytes);
            registry.inc_counter(&format!("{prefix}.demoted_in_bytes"), tier.demoted_in_bytes);
            registry.observe(&format!("{prefix}.stall_secs"), tier.stall_secs);
            registry.observe(&format!("{prefix}.write_busy_secs"), tier.write_busy_secs);
            registry.observe(&format!("{prefix}.read_busy_secs"), tier.read_busy_secs);
        }
        for c in self.classes.iter() {
            let prefix = format!("offload.class.{}", c.class);
            registry.inc_counter(&format!("{prefix}.offloaded_bytes"), c.offloaded_bytes);
            registry.inc_counter(&format!("{prefix}.reloaded_bytes"), c.reloaded_bytes);
            registry.inc_counter(&format!("{prefix}.stores"), c.stores);
            registry.inc_counter(&format!("{prefix}.loads"), c.loads);
        }
        registry.observe("offload.stall_secs", self.stall_secs);
        registry.observe("offload.store_stall_secs", self.store_stall_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_bytes_sums_directions() {
        let s = OffloadStats {
            offloaded_bytes: 10,
            reloaded_bytes: 5,
            ..OffloadStats::default()
        };
        assert_eq!(s.io_bytes(), 15);
    }

    #[test]
    fn default_is_all_zero() {
        let s = OffloadStats::default();
        assert_eq!(s.io_bytes(), 0);
        assert_eq!(s.stall_secs, 0.0);
    }

    #[test]
    fn export_accumulates_across_steps() {
        let registry = MetricsRegistry::new();
        let s = OffloadStats {
            offloaded_bytes: 100,
            store_jobs: 2,
            stall_secs: 0.25,
            ..OffloadStats::default()
        };
        s.export_to(&registry);
        s.export_to(&registry);
        assert_eq!(registry.counter("offload.offloaded_bytes"), 200);
        assert_eq!(registry.counter("offload.store_jobs"), 4);
        let stall = registry.histogram("offload.stall_secs").unwrap();
        assert_eq!(stall.count, 2);
        assert_eq!(stall.sum, 0.5);
    }

    #[test]
    fn export_includes_per_tier_counters() {
        let registry = MetricsRegistry::new();
        let s = OffloadStats {
            spilled_bytes: 3,
            tiers: vec![
                TierCounters {
                    name: "dram".to_owned(),
                    bytes_written: 7,
                    ..TierCounters::default()
                },
                TierCounters {
                    name: "ssd".to_owned(),
                    spilled_in_bytes: 3,
                    ..TierCounters::default()
                },
            ],
            ..OffloadStats::default()
        };
        s.export_to(&registry);
        assert_eq!(registry.counter("offload.spilled_bytes"), 3);
        assert_eq!(registry.counter("offload.tier0.dram.bytes_written"), 7);
        assert_eq!(registry.counter("offload.tier1.ssd.spilled_in_bytes"), 3);
    }

    #[test]
    fn class_mut_materialises_all_lanes_in_order() {
        let mut s = OffloadStats::default();
        assert!(s.classes.is_empty());
        s.class_mut(OffloadClass::OptimizerState).offloaded_bytes += 64;
        assert_eq!(s.classes.len(), 3);
        assert_eq!(s.classes[0].class, "activation");
        assert_eq!(s.classes[1].class, "gradient");
        assert_eq!(s.classes[2].class, "optimizer_state");
        assert_eq!(
            s.class(OffloadClass::OptimizerState)
                .map(|c| c.offloaded_bytes),
            Some(64)
        );
    }

    #[test]
    fn export_includes_per_class_counters() {
        let registry = MetricsRegistry::new();
        let mut s = OffloadStats::default();
        {
            let g = s.class_mut(OffloadClass::Gradient);
            g.offloaded_bytes = 40;
            g.stores = 2;
        }
        {
            let o = s.class_mut(OffloadClass::OptimizerState);
            o.reloaded_bytes = 16;
            o.loads = 1;
        }
        s.export_to(&registry);
        assert_eq!(
            registry.counter("offload.class.gradient.offloaded_bytes"),
            40
        );
        assert_eq!(registry.counter("offload.class.gradient.stores"), 2);
        assert_eq!(
            registry.counter("offload.class.optimizer_state.reloaded_bytes"),
            16
        );
        assert_eq!(registry.counter("offload.class.optimizer_state.loads"), 1);
        assert_eq!(
            registry.counter("offload.class.activation.offloaded_bytes"),
            0
        );
    }
}
