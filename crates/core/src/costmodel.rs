//! Profile-guided placement cost model.
//!
//! The static [`crate::PlacementPolicy`] decides *whether* a tensor
//! offloads; the [`TierStack`] decides *where* with a fixed front-first
//! walk. Neither sees time. This module closes the loop the way
//! 10Cache's profile-guided tier assignment does: it rebuilds the step's
//! critical path from a [`StepProfile`] — forward compute vs the store
//! drain at the forward/backward barrier, backward compute vs the reload
//! traffic — and scores candidate per-module tier assignments by the
//! modeled step time. [`CostModel::plan`] returns the deterministic
//! greedy best assignment as a [`TierPlan`]; the cache applies it at
//! pack time (via [`TierStack::reserve_preferring`]) and re-plans
//! between steps as fresh profiles arrive, promoting hot (late-forward,
//! early-backward) modules up the stack and demoting cold ones.
//!
//! The same model replaces the adaptive planner's parallel bandwidth
//! estimate: [`CostModel::effective_write_bps`] prices a byte split over
//! the tiers it actually lands on — serialised across the shared write
//! bus when one is configured — instead of summing link bandwidths that
//! cannot be used concurrently.
//!
//! Timing semantics mirror the simulator exactly (see
//! [`crate::TensorCache::drain_stores`]): stores submitted during
//! forward cannot begin before the first module's compute finishes
//! (`t0`), the forward stage ends at `max(compute, t0 + store drain)`,
//! and the backward stage ends at `max(compute, reload time)`.

use crate::adaptive::StepProfile;
use crate::io::IoEngine;
use crate::tier::{TierId, TierStack};
use std::collections::BTreeMap;

/// One placement tier as the cost model prices it.
#[derive(Debug, Clone, PartialEq)]
pub struct TierCost {
    /// The tier's id in the owning [`TierStack`].
    pub tier: TierId,
    /// The tier's display name.
    pub name: String,
    /// Effective store bandwidth, bytes/s (link rate capped by the
    /// shared write bus when one is configured).
    pub write_bps: f64,
    /// Load bandwidth, bytes/s (reads are independent per link).
    pub read_bps: f64,
    /// Admission capacity, `None` when unbounded.
    pub capacity_bytes: Option<u64>,
}

/// The modeled step-time calculator over a stack's placement tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    tiers: Vec<TierCost>,
    bus_write_bps: Option<f64>,
    /// Fixed per-store-job submission cost, seconds (mirrors
    /// [`IoEngine::store_job_overhead_secs`]).
    store_job_overhead_secs: f64,
    /// Coalescer segment size the drain is priced under (0 = one job
    /// per tier, the pre-coalescer lower bound).
    segment_bytes: u64,
}

/// A planned per-module tier assignment plus its modeled step times —
/// what [`CostModel::plan`] produces and the cache consults at pack
/// time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TierPlan {
    assignments: BTreeMap<String, TierId>,
    /// Planned bytes per cost-model tier (same order as
    /// [`CostModel::tiers`]).
    pub tier_bytes: Vec<u64>,
    /// Modeled step time of the planned assignment, seconds.
    pub modeled_step_secs: f64,
    /// Modeled step time of the static front-first assignment, seconds
    /// (the delta against `modeled_step_secs` is the plan's predicted
    /// win).
    pub baseline_step_secs: f64,
}

impl TierPlan {
    /// The planned tier for `path`, matching the innermost planned
    /// ancestor the same way [`crate::AdaptivePlan::keeps`] does.
    pub fn preferred(&self, path: &str) -> Option<TierId> {
        if let Some(t) = self.assignments.get(path) {
            return Some(*t);
        }
        self.assignments
            .iter()
            .filter(|(k, _)| {
                path.starts_with(k.as_str()) && path.as_bytes().get(k.len()) == Some(&b'/')
            })
            .max_by_key(|(k, _)| k.len())
            .map(|(_, t)| *t)
    }

    /// The planned module-path → tier map.
    pub fn assignments(&self) -> &BTreeMap<String, TierId> {
        &self.assignments
    }

    /// Whether the plan carries any assignment at all.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

impl CostModel {
    /// Builds the model from the engine's link pricing and the stack's
    /// placement tiers (demotion-only tiers are a recovery path and are
    /// not planned over).
    pub fn from_parts(io: &IoEngine, tiers: &TierStack) -> CostModel {
        let bus = io.bus_write_bps();
        let tiers = tiers
            .placement_tiers()
            .into_iter()
            .map(|s| TierCost {
                write_bps: match bus {
                    Some(b) => io.write_bps_of(s.link).min(b),
                    None => io.write_bps_of(s.link),
                },
                read_bps: io.read_bps_of(s.link),
                tier: s.tier,
                name: s.name,
                capacity_bytes: s.capacity_bytes,
            })
            .collect();
        CostModel {
            tiers,
            bus_write_bps: bus,
            store_job_overhead_secs: io.store_job_overhead_secs(),
            segment_bytes: 0,
        }
    }

    /// Prices the store drain as if the coalescer sealed segments of
    /// `bytes` (0 restores one-job-per-tier pricing). The cache passes
    /// its configured `coalesce_segment_bytes` here so planning sees the
    /// same job counts the simulator will charge overhead for.
    pub fn with_segment_bytes(mut self, bytes: u64) -> CostModel {
        self.segment_bytes = bytes;
        self
    }

    /// The segment size the drain is priced under.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Store jobs needed to move `bytes` to one tier under the priced
    /// segment size. With coalescing off the model prices the lower
    /// bound of one job per non-empty tier — the per-tensor job count is
    /// a runtime quantity only the simulator sees.
    pub fn jobs_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else if self.segment_bytes > 0 {
            bytes.div_ceil(self.segment_bytes)
        } else {
            1
        }
    }

    /// The tiers the model prices, front first.
    pub fn tiers(&self) -> &[TierCost] {
        &self.tiers
    }

    /// Index of `tier` inside [`CostModel::tiers`].
    pub fn tier_index(&self, tier: TierId) -> Option<usize> {
        self.tiers.iter().position(|t| t.tier == tier)
    }

    /// Seconds until the last store drains, given `bytes_per_tier`
    /// (indexed like [`CostModel::tiers`]; missing entries are zero).
    /// With a shared bus every job serialises, so the drain is the sum
    /// of per-tier transfer times; without one the links run in
    /// parallel and the slowest tier bounds the drain. Each tier also
    /// pays [`CostModel::jobs_for`] × the engine's per-job submission
    /// overhead, which is what makes coalesced segments strictly cheaper
    /// to drain than per-tensor jobs once the overhead is non-zero.
    pub fn store_drain_secs(&self, bytes_per_tier: &[u64]) -> f64 {
        let per_tier = self.tiers.iter().enumerate().map(|(i, t)| {
            let bytes = bytes_per_tier.get(i).copied().unwrap_or(0);
            bytes as f64 / t.write_bps + self.jobs_for(bytes) as f64 * self.store_job_overhead_secs
        });
        if self.bus_write_bps.is_some() {
            per_tier.sum()
        } else {
            per_tier.fold(0.0, f64::max)
        }
    }

    /// Seconds until every reload finishes — reads are full duplex and
    /// independent per link, so the slowest tier bounds the time.
    pub fn load_secs(&self, bytes_per_tier: &[u64]) -> f64 {
        self.tiers
            .iter()
            .enumerate()
            .map(|(i, t)| bytes_per_tier.get(i).copied().unwrap_or(0) as f64 / t.read_bps)
            .fold(0.0, f64::max)
    }

    /// The effective aggregate store bandwidth of a byte split: total
    /// bytes over their drain time. This is the adaptive planner's
    /// budget — with a shared bus it is strictly less than the sum of
    /// link bandwidths the pre-cost-model planner assumed.
    pub fn effective_write_bps(&self, bytes_per_tier: &[u64]) -> f64 {
        let total: u64 = bytes_per_tier.iter().sum();
        let drain = self.store_drain_secs(bytes_per_tier);
        if total == 0 || drain <= 0.0 {
            self.aggregate_write_bps()
        } else {
            total as f64 / drain
        }
    }

    /// Price of one optimizer-stage state job on `tier`: load the
    /// stage's optimizer state and gradients back from the tier, then
    /// store the refreshed state. Reads are full duplex; the store-back
    /// rides the (possibly bus-capped) write path. The overlap engine
    /// uses this to decide how much of each stage's update the next
    /// step's forward can hide (GreedySnake's schedule), on the same
    /// model the activation planner prices stores with.
    pub fn state_job_secs(&self, tier_idx: usize, load_bytes: u64, store_bytes: u64) -> f64 {
        let Some(t) = self.tiers.get(tier_idx) else {
            return 0.0;
        };
        let write_bps = match self.bus_write_bps {
            Some(b) => b.min(t.write_bps),
            None => t.write_bps,
        };
        load_bytes as f64 / t.read_bps.max(f64::MIN_POSITIVE)
            + store_bytes as f64 / write_bps.max(f64::MIN_POSITIVE)
    }

    /// Upper bound on deliverable store bandwidth: the link sum, capped
    /// by the shared bus when one is configured.
    pub fn aggregate_write_bps(&self) -> f64 {
        let sum: f64 = self.tiers.iter().map(|t| t.write_bps).sum();
        match self.bus_write_bps {
            Some(b) => b.min(sum.max(f64::MIN_POSITIVE)),
            None => sum.max(f64::MIN_POSITIVE),
        }
    }

    /// The byte split of the static front-first placement (each module
    /// lands on the first tier with capacity headroom — what
    /// [`TierStack::reserve`] does without a plan).
    pub fn front_first_assignment(&self, profile: &StepProfile) -> Vec<Option<usize>> {
        let mut used = vec![0u64; self.tiers.len()];
        profile
            .modules
            .iter()
            .map(|m| {
                for (i, t) in self.tiers.iter().enumerate() {
                    let fits = t
                        .capacity_bytes
                        .map(|c| used[i].saturating_add(m.offload_bytes) <= c)
                        .unwrap_or(true);
                    if fits {
                        used[i] += m.offload_bytes;
                        return Some(i);
                    }
                }
                None
            })
            .collect()
    }

    /// Sums each tier's planned bytes under `assignment` (entries are
    /// indices into [`CostModel::tiers`]; `None` keeps the module
    /// resident).
    pub fn split_for(&self, profile: &StepProfile, assignment: &[Option<usize>]) -> Vec<u64> {
        let mut split = vec![0u64; self.tiers.len()];
        for (m, a) in profile.modules.iter().zip(assignment) {
            if let Some(i) = *a {
                if i < split.len() {
                    split[i] += m.offload_bytes;
                }
            }
        }
        split
    }

    /// The modeled step time of `assignment`: forward stage
    /// `max(compute, t0 + store drain)` plus backward stage
    /// `max(compute, reload time)`, with `t0` the first module's forward
    /// time (no store can be submitted before it) and backward compute
    /// `bwd_fwd_ratio ×` forward.
    pub fn modeled_step_secs(
        &self,
        profile: &StepProfile,
        assignment: &[Option<usize>],
        bwd_fwd_ratio: f64,
    ) -> f64 {
        let split = self.split_for(profile, assignment);
        let fwd = profile
            .fwd_total_secs
            .max(profile.modules.iter().map(|m| m.fwd_secs).sum::<f64>());
        let t0 = profile.modules.first().map(|m| m.fwd_secs).unwrap_or(0.0);
        let fwd_stage = fwd.max(t0 + self.store_drain_secs(&split));
        let bwd = bwd_fwd_ratio * fwd;
        let bwd_stage = bwd.max(self.load_secs(&split));
        fwd_stage + bwd_stage
    }

    /// Plans a per-module tier assignment for `profile`, deterministic
    /// for a fixed profile:
    ///
    /// 1. **Hot-first seeding** — modules late in forward reload first
    ///    in backward; they get the frontmost tier with headroom, colder
    ///    modules take what remains (cold tensors are thereby demoted
    ///    relative to the front-first walk, hot ones promoted).
    /// 2. **Greedy improvement** — single-module moves between tiers,
    ///    accepted only when the modeled step time strictly drops,
    ///    scanned in fixed order for a bounded number of passes.
    ///
    /// Capacity bounds are respected throughout; a module that fits
    /// nowhere is left unassigned (kept resident, exactly like a failed
    /// [`TierStack::reserve`]).
    pub fn plan(&self, profile: &StepProfile, bwd_fwd_ratio: f64) -> TierPlan {
        let n = profile.modules.len();
        let mut assign: Vec<Option<usize>> = vec![None; n];
        let mut used = vec![0u64; self.tiers.len()];
        for m in (0..n).rev() {
            let bytes = profile.modules[m].offload_bytes;
            for (i, t) in self.tiers.iter().enumerate() {
                let fits = t
                    .capacity_bytes
                    .map(|c| used[i].saturating_add(bytes) <= c)
                    .unwrap_or(true);
                if fits {
                    assign[m] = Some(i);
                    used[i] += bytes;
                    break;
                }
            }
        }
        let mut best = self.modeled_step_secs(profile, &assign, bwd_fwd_ratio);
        for _pass in 0..4 {
            let mut improved = false;
            for m in 0..n {
                let Some(cur) = assign[m] else { continue };
                let bytes = profile.modules[m].offload_bytes;
                for cand in 0..self.tiers.len() {
                    if cand == cur {
                        continue;
                    }
                    let fits = self.tiers[cand]
                        .capacity_bytes
                        .map(|c| used[cand].saturating_add(bytes) <= c)
                        .unwrap_or(true);
                    if !fits {
                        continue;
                    }
                    assign[m] = Some(cand);
                    let score = self.modeled_step_secs(profile, &assign, bwd_fwd_ratio);
                    if score + 1e-12 < best {
                        best = score;
                        used[cur] -= bytes;
                        used[cand] += bytes;
                        improved = true;
                        break;
                    }
                    assign[m] = Some(cur);
                }
            }
            if !improved {
                break;
            }
        }
        let baseline = self.front_first_assignment(profile);
        let baseline_step_secs = self.modeled_step_secs(profile, &baseline, bwd_fwd_ratio);
        let tier_bytes = self.split_for(profile, &assign);
        let assignments = profile
            .modules
            .iter()
            .zip(&assign)
            .filter_map(|(m, a)| a.map(|i| (m.path.clone(), self.tiers[i].tier)))
            .collect();
        TierPlan {
            assignments,
            tier_bytes,
            modeled_step_secs: best,
            baseline_step_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::ModuleProfile;
    use crate::io::TierLink;
    use crate::target::CpuTarget;
    use crate::tier::Tier;
    use ssdtrain_simhw::SimClock;
    use std::sync::Arc;

    fn two_tier_model(front_cap: u64, bus: Option<f64>) -> CostModel {
        let links = vec![
            TierLink::new("dram", 2e9, 2e9),
            TierLink::new("ssd", 1e9, 1e9),
        ];
        let io = match bus {
            Some(b) => IoEngine::tiered_with_bus(SimClock::new(), links, b),
            None => IoEngine::tiered(SimClock::new(), links),
        };
        let stack = TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(1 << 40)), 0).with_capacity(front_cap),
            Tier::new("ssd", Arc::new(CpuTarget::new(1 << 40)), 1),
        ]);
        CostModel::from_parts(&io, &stack)
    }

    fn profile(mods: &[(&str, u64, f64)]) -> StepProfile {
        StepProfile {
            modules: mods
                .iter()
                .map(|(p, b, t)| ModuleProfile {
                    path: (*p).into(),
                    offload_bytes: *b,
                    fwd_secs: *t,
                    store_secs: 0.0,
                    load_secs: 0.0,
                })
                .collect(),
            fwd_total_secs: mods.iter().map(|m| m.2).sum(),
            fwd_io_bytes: mods.iter().map(|m| m.1).sum(),
            fwd_io_secs: 0.0,
        }
    }

    #[test]
    fn bus_serialises_the_modeled_drain() {
        let with_bus = two_tier_model(u64::MAX, Some(2e9));
        let without = two_tier_model(u64::MAX, None);
        let split = [2_000_000_000, 1_000_000_000];
        // Bus: 1 s + 1 s serialised; independent links: max(1, 1).
        assert_eq!(with_bus.store_drain_secs(&split), 2.0);
        assert_eq!(without.store_drain_secs(&split), 1.0);
        assert!(with_bus.effective_write_bps(&split) < without.effective_write_bps(&split));
    }

    #[test]
    fn effective_bandwidth_never_exceeds_the_bus() {
        let m = two_tier_model(u64::MAX, Some(2e9));
        assert_eq!(m.aggregate_write_bps(), 2e9);
        assert!(m.effective_write_bps(&[1 << 30, 1 << 30]) <= 2e9);
    }

    #[test]
    fn plan_respects_tier_capacity() {
        let gb = 1_000_000_000u64;
        let m = two_tier_model(gb, Some(2e9));
        let p = profile(&[("l0", gb, 0.5), ("l1", gb, 0.5), ("l2", gb, 0.5)]);
        let plan = m.plan(&p, 2.0);
        assert!(plan.tier_bytes[0] <= gb, "front tier overcommitted");
        assert_eq!(plan.tier_bytes.iter().sum::<u64>(), 3 * gb);
    }

    #[test]
    fn hot_tail_lands_on_the_front_tier() {
        let gb = 1_000_000_000u64;
        let m = two_tier_model(gb, Some(2e9));
        let p = profile(&[("l0", gb, 0.5), ("l1", gb, 0.5), ("l2", gb, 0.5)]);
        let plan = m.plan(&p, 2.0);
        // The last module reloads first in backward: it gets dram.
        assert_eq!(plan.preferred("l2").map(|t| t.index()), Some(0));
        assert_eq!(plan.preferred("l0").map(|t| t.index()), Some(1));
        // Nested paths match their planned ancestor.
        assert_eq!(plan.preferred("l2/mlp").map(|t| t.index()), Some(0));
        assert_eq!(plan.preferred("unknown"), None);
    }

    #[test]
    fn planning_is_deterministic() {
        let gb = 1_000_000_000u64;
        let m = two_tier_model(gb, Some(2e9));
        let p = profile(&[("l0", gb, 0.3), ("l1", gb / 2, 0.4), ("l2", gb, 0.3)]);
        assert_eq!(m.plan(&p, 2.0), m.plan(&p, 2.0));
    }

    #[test]
    fn job_overhead_prices_segment_counts() {
        let links = vec![TierLink::new("ssd", 1e9, 1e9)];
        let io = IoEngine::tiered(SimClock::new(), links);
        io.set_store_job_overhead(0.01);
        let stack = TierStack::single(Arc::new(CpuTarget::new(1 << 40)));
        let m = CostModel::from_parts(&io, &stack);
        let bytes = [1_000_000_000u64];
        // One job per tier without a segment size: 1 s transfer + 10 ms.
        assert!((m.store_drain_secs(&bytes) - 1.01).abs() < 1e-12);
        // Priced at 256 MB segments: ceil(1e9 / 256e6) = 4 jobs.
        let seg = m.clone().with_segment_bytes(256_000_000);
        assert_eq!(seg.jobs_for(bytes[0]), 4);
        assert!((seg.store_drain_secs(&bytes) - 1.04).abs() < 1e-12);
        assert_eq!(seg.jobs_for(0), 0, "empty tiers pay no overhead");
    }

    #[test]
    fn zero_overhead_keeps_legacy_drain_times() {
        let m = two_tier_model(u64::MAX, None);
        let seg = m.clone().with_segment_bytes(1 << 20);
        let split = [2_000_000_000, 1_000_000_000];
        assert_eq!(m.store_drain_secs(&split), seg.store_drain_secs(&split));
    }

    #[test]
    fn modeled_step_never_beats_pure_compute() {
        let m = two_tier_model(u64::MAX, Some(2e9));
        let p = profile(&[("l0", 1 << 30, 0.5), ("l1", 1 << 30, 0.5)]);
        let assign = m.front_first_assignment(&p);
        let step = m.modeled_step_secs(&p, &assign, 2.0);
        assert!(step >= 3.0 - 1e-12, "fwd 1 s + bwd 2 s bounds the step");
    }
}
