//! Tiered offload backends: an ordered stack of capacity-bounded tiers.
//!
//! The paper's Figure 5 keeps a host-DRAM offloader alongside the SSD
//! path; follow-up systems (10Cache, MemAscend) show the interesting
//! regime is *tiered* — a fast DRAM front tier of bounded capacity
//! spilling into a high-endurance SSD array. [`TierStack`] expresses
//! that as an ordered list of [`Tier`]s, each owning a device
//! ([`OffloadTarget`]), an optional byte capacity and the index of the
//! simulated link its transfers are priced on.
//!
//! Semantics:
//!
//! * **Placement / spill** — [`TierStack::reserve`] admits a tensor into
//!   the first placement-eligible tier with capacity headroom; a tensor
//!   that does not fit the front tier *spills* to the next one. When no
//!   tier has room, `reserve` returns `None` and the cache keeps the
//!   tensor resident (graceful refusal, never an error).
//! * **Demotion** — a tier whose device refuses a write at commit time
//!   demotes the bytes to the next tier down via [`TierStack::demote`];
//!   this is how [`crate::RecoveryPolicy::FallbackTarget`] is expressed
//!   (the fallback target is simply an appended demotion-only tier).
//! * **Accounting** — every tier keeps its own [`TierCounters`]
//!   (device-write / read-back / spill-in / demotion-in traffic), so the
//!   aggregate counters in [`crate::OffloadStats`] split per tier.
//!
//! A single-tier stack ([`TierStack::single`]) reproduces the flat
//! `OffloadTarget` behavior exactly: unbounded admission, every failure
//! surfacing at device-write time.

use crate::id::TensorKey;
use crate::target::{BatchItem, OffloadTarget};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::sync::Arc;

/// Index of a tier inside a [`TierStack`] (0 = fastest / frontmost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TierId(usize);

impl TierId {
    /// Position of the tier in the stack (0 = front).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Whether new tensors may be *placed* on a tier, or whether it only
/// absorbs demotions from the tiers above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierRole {
    /// Eligible for pack-time placement (and demotions).
    #[default]
    Placement,
    /// Only reachable by demotion — the spill-of-last-resort role the
    /// flat design called the "fallback target".
    DemotionOnly,
}

/// One storage level of a [`TierStack`]: a device plus its admission
/// capacity and the simulated link its transfers are priced on.
pub struct Tier {
    name: String,
    device: Arc<dyn OffloadTarget>,
    capacity_bytes: Option<u64>,
    link: usize,
    role: TierRole,
}

impl Tier {
    /// A placement tier over `device`, unbounded, priced on `link`
    /// (an index into the [`crate::IoEngine`]'s tier links).
    pub fn new(name: impl Into<String>, device: Arc<dyn OffloadTarget>, link: usize) -> Tier {
        Tier {
            name: name.into(),
            device,
            capacity_bytes: None,
            link,
            role: TierRole::Placement,
        }
    }

    /// Bounds pack-time admission to `bytes` of live reservations.
    pub fn with_capacity(mut self, bytes: u64) -> Tier {
        self.capacity_bytes = Some(bytes);
        self
    }

    /// Marks the tier demotion-only (skipped by placement).
    pub fn demotion_only(mut self) -> Tier {
        self.role = TierRole::DemotionOnly;
        self
    }

    /// The tier's display name (defaults sensibly to the device name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The admission capacity, `None` when unbounded.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity_bytes
    }

    /// Index of the simulated link transfers to this tier are priced on.
    pub fn link(&self) -> usize {
        self.link
    }

    /// Placement eligibility.
    pub fn role(&self) -> TierRole {
        self.role
    }
}

impl fmt::Debug for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tier")
            .field("name", &self.name)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("link", &self.link)
            .field("role", &self.role)
            .finish()
    }
}

/// Per-tier traffic counters for one training step (reset by
/// [`TierStack::reset_counters`]; surfaced as
/// [`crate::OffloadStats::tiers`]).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TierCounters {
    /// The tier's name (stable across steps).
    pub name: String,
    /// Bytes the tier's device accepted (successful writes, including
    /// demotions landing here).
    pub bytes_written: u64,
    /// Bytes read back from the tier's device.
    pub bytes_read: u64,
    /// Successful device writes.
    pub stores: u64,
    /// Successful device reads.
    pub loads: u64,
    /// Bytes placed here because a faster tier was full at pack time.
    pub spilled_in_bytes: u64,
    /// Bytes demoted here after a faster tier's device refused them.
    pub demoted_in_bytes: u64,
    /// Seconds the step stalled waiting for this tier's store queue to
    /// drain at a stage barrier (filled from the I/O engine when the
    /// stats snapshot is taken).
    #[serde(default)]
    pub stall_secs: f64,
    /// Seconds this tier's link spent transferring stores this step.
    #[serde(default)]
    pub write_busy_secs: f64,
    /// Seconds this tier's link spent transferring loads this step.
    #[serde(default)]
    pub read_busy_secs: f64,
}

/// Static description of one placement-eligible tier — the shape the
/// profile-guided cost model ([`crate::CostModel`]) consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// The tier's id in the stack.
    pub tier: TierId,
    /// The tier's display name.
    pub name: String,
    /// Index of the simulated link its transfers are priced on.
    pub link: usize,
    /// Admission capacity, `None` when unbounded.
    pub capacity_bytes: Option<u64>,
}

/// Where [`TierStack::reserve`] admitted a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPlacement {
    /// The tier holding the reservation.
    pub tier: TierId,
    /// Whether a fuller, faster tier was skipped (a spill).
    pub spilled: bool,
}

struct TierState {
    /// Live pack-time reservations against the tier's capacity.
    reserved: u64,
    counters: TierCounters,
}

/// An ordered stack of offload tiers (0 = fastest). Interior-mutable:
/// every method takes `&self`, so a stack can live inside the shared
/// [`crate::TensorCache`].
pub struct TierStack {
    inner: Mutex<Vec<(Tier, TierState)>>,
}

impl TierStack {
    /// A stack over `tiers`, front first.
    ///
    /// # Panics
    /// Panics if `tiers` is empty — a cache without storage is a
    /// construction-time configuration bug, not a runtime condition.
    pub fn new(tiers: Vec<Tier>) -> TierStack {
        assert!(!tiers.is_empty(), "a TierStack needs at least one tier");
        let inner = tiers
            .into_iter()
            .map(|t| {
                let counters = TierCounters {
                    name: t.name.clone(),
                    ..TierCounters::default()
                };
                (
                    t,
                    TierState {
                        reserved: 0,
                        counters,
                    },
                )
            })
            .collect();
        TierStack {
            inner: Mutex::new(inner),
        }
    }

    /// The flat-compatibility stack: one unbounded placement tier over
    /// `device`, priced on link 0. Reproduces the pre-tier behavior
    /// exactly (admission never refuses; failures surface at the device).
    pub fn single(device: Arc<dyn OffloadTarget>) -> TierStack {
        let name = device.name().to_owned();
        TierStack::new(vec![Tier::new(name, device, 0)])
    }

    /// Appends a demotion-only tier priced on the *front* tier's link —
    /// how [`crate::TensorCache::set_fallback_target`] re-expresses the
    /// flat design's fallback target (demoted loads travel the same
    /// simulated read channel they always did).
    pub fn push_demotion(&self, device: Arc<dyn OffloadTarget>) {
        let mut inner = self.inner.lock();
        let link = inner.first().map(|(t, _)| t.link).unwrap_or(0);
        let name = device.name().to_owned();
        let tier = Tier::new(name, device, link).demotion_only();
        let counters = TierCounters {
            name: tier.name.clone(),
            ..TierCounters::default()
        };
        inner.push((
            tier,
            TierState {
                reserved: 0,
                counters,
            },
        ));
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// The stack's tier ids, front first — the only way code outside
    /// this module obtains a [`TierId`] other than through
    /// [`TierStack::reserve`] / [`TierStack::demote`].
    pub fn tier_ids(&self) -> Vec<TierId> {
        (0..self.inner.lock().len()).map(TierId).collect()
    }

    /// Always `false`: construction guarantees at least one tier.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The tier's display name.
    pub fn name(&self, tier: TierId) -> String {
        let inner = self.inner.lock();
        inner
            .get(tier.0)
            .map(|(t, _)| t.name.clone())
            .unwrap_or_default()
    }

    /// Index of the simulated link the tier's transfers are priced on.
    pub fn link(&self, tier: TierId) -> usize {
        let inner = self.inner.lock();
        inner.get(tier.0).map(|(t, _)| t.link).unwrap_or(0)
    }

    /// The tier's device (shared handle).
    pub fn device(&self, tier: TierId) -> Option<Arc<dyn OffloadTarget>> {
        let inner = self.inner.lock();
        inner.get(tier.0).map(|(t, _)| t.device.clone())
    }

    /// The front tier's device — construction guarantees it exists
    /// (flat-era callers knew their single target by this handle).
    pub fn front_device(&self) -> Arc<dyn OffloadTarget> {
        self.inner.lock()[0].0.device.clone()
    }

    /// Live pack-time reservations against the tier.
    pub fn reserved_bytes(&self, tier: TierId) -> u64 {
        let inner = self.inner.lock();
        inner.get(tier.0).map(|(_, s)| s.reserved).unwrap_or(0)
    }

    /// Admits `bytes` into `preferred` when that tier is
    /// placement-eligible and has headroom — a *planned* placement, not
    /// a spill, even when faster tiers had room. Falls back to the
    /// front-to-back walk of [`TierStack::reserve`] otherwise, keeping
    /// its spill accounting (only a capacity-forced deviation counts).
    pub fn reserve_preferring(&self, preferred: TierId, bytes: u64) -> Option<TierPlacement> {
        {
            let mut inner = self.inner.lock();
            if let Some((tier, state)) = inner.get_mut(preferred.0) {
                let fits = match tier.capacity_bytes {
                    Some(cap) => state.reserved.saturating_add(bytes) <= cap,
                    None => true,
                };
                if tier.role == TierRole::Placement && fits {
                    state.reserved += bytes;
                    return Some(TierPlacement {
                        tier: preferred,
                        spilled: false,
                    });
                }
            }
        }
        self.reserve(bytes)
    }

    /// Admits `bytes` into the first placement tier with capacity
    /// headroom, walking front to back; a skipped-full front tier makes
    /// the admission a *spill*. Returns `None` when every eligible tier
    /// is full — the caller keeps the tensor resident.
    pub fn reserve(&self, bytes: u64) -> Option<TierPlacement> {
        let mut inner = self.inner.lock();
        let mut skipped_full = false;
        for (idx, (tier, state)) in inner.iter_mut().enumerate() {
            if tier.role != TierRole::Placement {
                continue;
            }
            let fits = match tier.capacity_bytes {
                Some(cap) => state.reserved.saturating_add(bytes) <= cap,
                None => true,
            };
            if !fits {
                skipped_full = true;
                continue;
            }
            state.reserved += bytes;
            if skipped_full {
                state.counters.spilled_in_bytes += bytes;
            }
            return Some(TierPlacement {
                tier: TierId(idx),
                spilled: skipped_full,
            });
        }
        None
    }

    /// Returns `bytes` of reservation to the tier (a cancelled or
    /// refused admission).
    pub fn release(&self, tier: TierId, bytes: u64) {
        let mut inner = self.inner.lock();
        if let Some((_, state)) = inner.get_mut(tier.0) {
            state.reserved = state.reserved.saturating_sub(bytes);
        }
    }

    /// Writes `len` bytes under `key` to the tier's device, accounting
    /// the traffic on success.
    ///
    /// # Errors
    /// Propagates the device's I/O error (capacity, injected fault, a
    /// vanished spill directory); the caller recovers per its
    /// [`crate::RecoveryPolicy`].
    pub fn write(
        &self,
        tier: TierId,
        key: &TensorKey,
        data: Option<&[u8]>,
        len: u64,
    ) -> io::Result<()> {
        let device = {
            let inner = self.inner.lock();
            match inner.get(tier.0) {
                Some((t, _)) => t.device.clone(),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("{tier} does not exist"),
                    ))
                }
            }
        };
        device.write(key, data, len)?;
        let mut inner = self.inner.lock();
        if let Some((_, state)) = inner.get_mut(tier.0) {
            state.counters.bytes_written += len;
            state.counters.stores += 1;
        }
        Ok(())
    }

    /// Writes a sealed segment — every member of `items` — to the
    /// tier's device in one batched operation
    /// ([`OffloadTarget::write_batch`]): one device store, `sum(len)`
    /// bytes of write traffic. Members keep their per-key identity for
    /// later reads and removes.
    ///
    /// # Errors
    /// Propagates the device's I/O error; the device has already
    /// unwound any partially written members, so the caller recovers at
    /// segment granularity per its [`crate::RecoveryPolicy`].
    pub fn write_segment(&self, tier: TierId, items: &[BatchItem<'_>]) -> io::Result<()> {
        let device = {
            let inner = self.inner.lock();
            match inner.get(tier.0) {
                Some((t, _)) => t.device.clone(),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("{tier} does not exist"),
                    ))
                }
            }
        };
        device.write_batch(items)?;
        let total: u64 = items.iter().map(|(_, _, len)| *len).sum();
        let mut inner = self.inner.lock();
        if let Some((_, state)) = inner.get_mut(tier.0) {
            state.counters.bytes_written += total;
            state.counters.stores += 1;
        }
        Ok(())
    }

    /// Reads the `len` bytes stored under `key` back from the tier
    /// (`Ok(None)` for symbolic entries), accounting the traffic on
    /// success.
    ///
    /// # Errors
    /// Propagates the device's I/O error; the cache retries per
    /// `max_io_retries`.
    pub fn read(&self, tier: TierId, key: &TensorKey, len: u64) -> io::Result<Option<Vec<u8>>> {
        let device = {
            let inner = self.inner.lock();
            match inner.get(tier.0) {
                Some((t, _)) => t.device.clone(),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        // ssdtrain-lint: allow(no-alloc-hot-loop): error-path
                        // message; steady-state reads never reach this arm
                        format!("{tier} does not exist"),
                    ));
                }
            }
        };
        let data = device.read(key)?;
        let mut inner = self.inner.lock();
        if let Some((_, state)) = inner.get_mut(tier.0) {
            state.counters.bytes_read += len;
            state.counters.loads += 1;
        }
        Ok(data)
    }

    /// Drops the entry for `key` and returns its reservation to the
    /// tier (idempotent at the device level).
    pub fn remove(&self, tier: TierId, key: &TensorKey, len: u64) {
        let device = {
            let mut inner = self.inner.lock();
            match inner.get_mut(tier.0) {
                Some((t, state)) => {
                    state.reserved = state.reserved.saturating_sub(len);
                    t.device.clone()
                }
                None => return,
            }
        };
        device.remove(key);
    }

    /// Demotes `len` bytes under `key` from `from` to the first tier
    /// below it (any role) that admits and accepts them, retrying each
    /// candidate's device up to `1 + max_retries` times. On success the
    /// reservation moves from `from` to the destination and the bytes
    /// are accounted as demotion-in traffic there. Returns the
    /// destination, or `None` when no lower tier took the bytes.
    pub fn demote(
        &self,
        from: TierId,
        key: &TensorKey,
        data: Option<&[u8]>,
        len: u64,
        max_retries: u32,
    ) -> Option<TierId> {
        let candidates: Vec<(usize, Arc<dyn OffloadTarget>)> = {
            let inner = self.inner.lock();
            inner
                .iter()
                .enumerate()
                .skip(from.0 + 1)
                .filter(|(_, (tier, state))| match tier.capacity_bytes {
                    Some(cap) => state.reserved.saturating_add(len) <= cap,
                    None => true,
                })
                .map(|(idx, (tier, _))| (idx, tier.device.clone()))
                .collect()
        };
        for (idx, device) in candidates {
            for _ in 0..=max_retries {
                if device.write(key, data, len).is_ok() {
                    let mut inner = self.inner.lock();
                    if let Some((_, state)) = inner.get_mut(idx) {
                        state.reserved += len;
                        state.counters.bytes_written += len;
                        state.counters.stores += 1;
                        state.counters.demoted_in_bytes += len;
                    }
                    if let Some((_, state)) = inner.get_mut(from.0) {
                        state.reserved = state.reserved.saturating_sub(len);
                    }
                    return Some(TierId(idx));
                }
            }
        }
        None
    }

    /// Static descriptions of the placement-eligible tiers, front
    /// first — the cost model's view of the stack (demotion-only tiers
    /// are a fault-recovery path and carry no planned placements).
    pub fn placement_tiers(&self) -> Vec<TierSpec> {
        let inner = self.inner.lock();
        inner
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| t.role == TierRole::Placement)
            .map(|(idx, (t, _))| TierSpec {
                tier: TierId(idx),
                name: t.name.clone(),
                link: t.link,
                capacity_bytes: t.capacity_bytes,
            })
            .collect()
    }

    /// Snapshot of every tier's counters, front first.
    pub fn counters(&self) -> Vec<TierCounters> {
        let inner = self.inner.lock();
        inner.iter().map(|(_, s)| s.counters.clone()).collect()
    }

    /// Zeroes the per-step counters (reservations are live state and
    /// survive — a fresh step starts with whatever is still stored).
    pub fn reset_counters(&self) {
        let mut inner = self.inner.lock();
        for (tier, state) in inner.iter_mut() {
            state.counters = TierCounters {
                name: tier.name.clone(),
                ..TierCounters::default()
            };
        }
    }

    /// Sum of every tier's device-accepted write traffic this step.
    pub fn total_bytes_written(&self) -> u64 {
        let inner = self.inner.lock();
        inner.iter().map(|(_, s)| s.counters.bytes_written).sum()
    }
}

impl fmt::Debug for TierStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        let mut d = f.debug_list();
        for (tier, state) in inner.iter() {
            d.entry(&format_args!(
                "{} (link {}, {:?}, reserved {})",
                tier.name, tier.link, tier.role, state.reserved
            ));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::CpuTarget;

    fn key(stamp: u64) -> TensorKey {
        TensorKey {
            stamp,
            shape: vec![2, 2],
        }
    }

    fn two_tier(front_cap: u64) -> TierStack {
        TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(front_cap)), 0).with_capacity(front_cap),
            Tier::new("ssd", Arc::new(CpuTarget::new(1 << 30)), 1),
        ])
    }

    #[test]
    fn single_stack_admits_unbounded() {
        let stack = TierStack::single(Arc::new(CpuTarget::new(10)));
        assert_eq!(
            stack.reserve(u64::MAX / 2),
            Some(TierPlacement {
                tier: TierId(0),
                spilled: false,
            })
        );
    }

    #[test]
    fn full_front_tier_spills_to_the_next() {
        let stack = two_tier(100);
        assert_eq!(
            stack.reserve(80),
            Some(TierPlacement {
                tier: TierId(0),
                spilled: false,
            })
        );
        assert_eq!(
            stack.reserve(40),
            Some(TierPlacement {
                tier: TierId(1),
                spilled: true,
            })
        );
        assert_eq!(stack.counters()[1].spilled_in_bytes, 40);
        // Releasing the front admission lets the next one in again.
        stack.release(TierId(0), 80);
        assert_eq!(
            stack.reserve(100),
            Some(TierPlacement {
                tier: TierId(0),
                spilled: false,
            })
        );
    }

    #[test]
    fn exhausted_stack_refuses() {
        let stack = TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(10)), 0).with_capacity(10)
        ]);
        assert!(stack.reserve(8).is_some());
        assert!(stack.reserve(8).is_none());
    }

    #[test]
    fn preferred_reservation_is_not_a_spill() {
        let stack = two_tier(100);
        // Planned placement on the back tier: deliberate, not a spill.
        assert_eq!(
            stack.reserve_preferring(TierId(1), 40),
            Some(TierPlacement {
                tier: TierId(1),
                spilled: false,
            })
        );
        assert_eq!(stack.counters()[1].spilled_in_bytes, 0);
        // A full preferred tier falls back to the normal walk.
        assert_eq!(
            stack.reserve_preferring(TierId(0), 200).map(|p| p.tier),
            Some(TierId(1))
        );
        assert_eq!(stack.counters()[1].spilled_in_bytes, 200);
        // An out-of-range preference degrades to plain reserve.
        assert_eq!(
            stack.reserve_preferring(TierId(9), 10).map(|p| p.tier),
            Some(TierId(0))
        );
    }

    #[test]
    fn placement_tiers_skip_demotion_only_levels() {
        let stack = TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(10)), 0).with_capacity(10),
            Tier::new("ssd", Arc::new(CpuTarget::new(1 << 20)), 1),
            Tier::new("cpu-fb", Arc::new(CpuTarget::new(1 << 20)), 0).demotion_only(),
        ]);
        let specs = stack.placement_tiers();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "dram");
        assert_eq!(specs[0].capacity_bytes, Some(10));
        assert_eq!(specs[1].link, 1);
    }

    #[test]
    fn demotion_only_tiers_are_skipped_by_placement() {
        let stack = TierStack::new(vec![
            Tier::new("dram", Arc::new(CpuTarget::new(10)), 0).with_capacity(10),
            Tier::new("cpu-fb", Arc::new(CpuTarget::new(1 << 20)), 0).demotion_only(),
        ]);
        assert!(stack.reserve(8).is_some());
        assert!(
            stack.reserve(8).is_none(),
            "fallback is not a placement tier"
        );
    }

    #[test]
    fn demote_moves_reservation_and_accounts_traffic() {
        let stack = two_tier(100);
        assert!(stack.reserve(60).is_some());
        let k = key(1);
        // Pretend the front device refused the write; demote directly.
        let dest = TierId(1);
        assert_eq!(stack.demote(TierId(0), &k, None, 60, 0), Some(dest));
        assert_eq!(stack.reserved_bytes(TierId(0)), 0);
        assert_eq!(stack.reserved_bytes(dest), 60);
        let c = stack.counters();
        assert_eq!(c[1].demoted_in_bytes, 60);
        assert_eq!(c[1].bytes_written, 60);
        assert_eq!(stack.read(dest, &k, 60).ok(), Some(None));
        stack.remove(dest, &k, 60);
        assert_eq!(stack.reserved_bytes(dest), 0);
    }

    #[test]
    fn write_segment_accounts_one_store_for_all_members() {
        let stack = two_tier(100);
        assert!(stack.reserve(12).is_some());
        let keys: Vec<TensorKey> = (10..13).map(key).collect();
        let items: Vec<BatchItem<'_>> = keys.iter().map(|k| (k, None, 4u64)).collect();
        assert!(stack.write_segment(TierId(0), &items).is_ok());
        let c = stack.counters();
        assert_eq!(c[0].bytes_written, 12);
        assert_eq!(c[0].stores, 1, "a segment is one device store");
        // Members stay individually readable and removable.
        assert_eq!(stack.read(TierId(0), &keys[1], 4).ok(), Some(None));
        stack.remove(TierId(0), &keys[1], 4);
        assert!(stack.read(TierId(0), &keys[1], 4).is_err());
    }

    #[test]
    fn failed_segment_write_accounts_nothing() {
        let stack = TierStack::new(vec![Tier::new("tiny", Arc::new(CpuTarget::new(6)), 0)]);
        let keys: Vec<TensorKey> = (20..23).map(key).collect();
        let items: Vec<BatchItem<'_>> = keys.iter().map(|k| (k, None, 4u64)).collect();
        assert!(stack.write_segment(TierId(0), &items).is_err());
        let c = stack.counters();
        assert_eq!(c[0].bytes_written, 0);
        assert_eq!(c[0].stores, 0);
    }

    #[test]
    fn write_read_remove_roundtrip_accounts_per_tier() {
        let stack = two_tier(100);
        assert!(stack.reserve(4).is_some());
        let k = key(2);
        assert!(stack.write(TierId(0), &k, Some(&[1, 2, 3, 4]), 4).is_ok());
        assert_eq!(
            stack.read(TierId(0), &k, 4).ok().flatten(),
            Some(vec![1, 2, 3, 4])
        );
        let c = stack.counters();
        assert_eq!(c[0].bytes_written, 4);
        assert_eq!(c[0].bytes_read, 4);
        assert_eq!(c[0].stores, 1);
        assert_eq!(c[0].loads, 1);
        assert_eq!(stack.total_bytes_written(), 4);
        stack.remove(TierId(0), &k, 4);
        assert!(stack.read(TierId(0), &k, 4).is_err());
        stack.reset_counters();
        assert_eq!(stack.total_bytes_written(), 0);
        assert_eq!(stack.counters()[0].name, "dram");
    }
}
