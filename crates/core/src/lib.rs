//! # ssdtrain — SSD-based activation offloading for LLM training
//!
//! This crate is the Rust reproduction of the system the paper calls
//! **TBA** (published at DAC 2025 as **SSDTrain**): a tensor cache that
//! intercepts the autograd engine's saved-tensor pack/unpack hooks,
//! streams activations to NVMe SSDs during forward propagation, and
//! prefetches them back just before backward propagation needs them —
//! fully overlapping the I/O with computation so that activation memory
//! is reclaimed at **no step-time cost**.
//!
//! Components map one-to-one onto the paper's design (Section 3):
//!
//! | paper | here |
//! |---|---|
//! | tensor cache (Alg. 2) | [`TensorCache`] |
//! | `get_id()` dedup (§3.3.1) | [`id::tensor_key`] — first-seen stamp on the *storage* + shape |
//! | parameter exclusion (§3.3.1) | [`TensorCache::register_parameter`] |
//! | store/load thread pools (§3.3.2) | [`io::IoEngine`] FIFO queues on the simulated PCIe/SSD channels |
//! | data forwarding (§3.3.2) | in-flight stores are returned from memory and cancelled if still queued |
//! | adaptive offloading (§3.3.3, Fig. 8) | [`adaptive`] — profile a step, keep the last modules resident |
//! | SSD / CPU offloader (§3.1, Fig. 5) | [`target::SsdTarget`], [`target::CpuTarget`] |
//! | keep/offload decision (Alg. 2 ll. 12, 15) | [`placement::PlacementPolicy`] — pure, extracted from `pack` |
//! | tiered backends (Fig. 5 "future work") | [`tier::TierStack`] — DRAM front tier spilling to the SSD array |
//! | scheduler hints (Alg. 1) | [`TensorCache::prefetch_last_module`], [`TensorCache::wait_io`], micro-batch switching |
//!
//! The placement strategies of the ROK curve (Section 4.3) are selected
//! with [`PlacementStrategy`].

//! Failure handling: offload-target I/O errors flow through
//! [`RecoveryPolicy`] instead of panicking — see [`error::OffloadError`]
//! and the [`fault::FaultyTarget`] decorator driving deterministic
//! fault-injection experiments.

pub mod adaptive;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod costmodel;
pub mod error;
pub mod fault;
pub mod id;
pub mod io;
pub mod placement;
pub mod prelude;
pub mod stats;
pub mod target;
pub mod tier;

/// The observability layer (re-exported `ssdtrain-trace` crate): trace
/// sink, metrics registry and exporters.
pub use ssdtrain_trace as trace;

// The crate root re-exports exactly the prelude — one list to maintain.
pub use prelude::*;
