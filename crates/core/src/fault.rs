//! [`FaultyTarget`] — wraps any [`OffloadTarget`] with a deterministic
//! [`FaultPlan`].
//!
//! The decorator sits between the tensor cache and the real target, so
//! every activation store/load passes through the plan. Error faults
//! become `io::Error`s the cache's recovery machinery handles;
//! [`FaultKind::SlowIo`] firings throttle the attached [`IoEngine`]
//! mid-run instead, modelling a device that degrades rather than fails.

use crate::id::TensorKey;
use crate::io::IoEngine;
use crate::target::{BatchItem, OffloadTarget};
use parking_lot::Mutex;
use ssdtrain_simhw::{FaultKind, FaultLog, FaultPlan, SimTime, WearMeter};
use ssdtrain_trace::{ArgValue, TraceCategory, TraceSink};
use std::fmt;
use std::io;
use std::sync::Arc;

/// An [`OffloadTarget`] decorator injecting faults from a seeded plan.
///
/// ```
/// use ssdtrain::{CpuTarget, FaultyTarget, OffloadTarget};
/// use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
/// use std::sync::Arc;
///
/// let plan = FaultPlan::new(7)
///     .with_fault(FaultTrigger::NthOp { nth: 0 }, FaultKind::WriteError);
/// let target = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
/// let key = ssdtrain::id::TensorKey { stamp: 1, shape: vec![4] };
/// assert!(target.write(&key, None, 16).is_err()); // injected
/// assert!(target.write(&key, None, 16).is_ok()); // plan exhausted
/// assert_eq!(target.fault_log().write_faults, 1);
/// ```
pub struct FaultyTarget {
    inner: Arc<dyn OffloadTarget>,
    plan: Mutex<FaultPlan>,
    io: Mutex<Option<IoEngine>>,
    trace: Mutex<TraceSink>,
    name: String,
}

impl FaultyTarget {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn OffloadTarget>, plan: FaultPlan) -> Arc<FaultyTarget> {
        let name = format!("faulty-{}", inner.name());
        Arc::new(FaultyTarget {
            inner,
            plan: Mutex::new(plan),
            io: Mutex::new(None),
            trace: Mutex::new(TraceSink::disabled()),
            name,
        })
    }

    /// Routes fault firings into `sink` as instants (category `fault`),
    /// timestamped on the attached engine's clock.
    pub fn set_trace(&self, sink: TraceSink) {
        *self.trace.lock() = sink;
    }

    /// Attaches the I/O engine [`FaultKind::SlowIo`] firings throttle.
    /// Without an engine attached, slow-I/O faults only show up in the
    /// log (operations still succeed at full speed).
    pub fn attach_io(&self, io: IoEngine) {
        *self.io.lock() = Some(io);
    }

    /// The wrapped target.
    pub fn inner(&self) -> &Arc<dyn OffloadTarget> {
        &self.inner
    }

    /// Firing counters of the plan so far.
    pub fn fault_log(&self) -> FaultLog {
        self.plan.lock().log()
    }

    fn emit_fault(&self, fault: FaultKind, op: &'static str) {
        let sink = self.trace.lock().clone();
        if !sink.is_enabled() {
            return;
        }
        let now = self
            .io
            .lock()
            .as_ref()
            .map_or(SimTime::ZERO, |io| io.clock().now());
        let (name, mut args) = match fault {
            FaultKind::WriteError => ("fault.write_error", Vec::new()),
            FaultKind::ReadError => ("fault.read_error", Vec::new()),
            FaultKind::EnduranceExhausted => (
                "fault.endurance_exhausted",
                vec![("wear", ArgValue::F64(self.inner.wear_fraction()))],
            ),
            FaultKind::SlowIo { factor } => {
                ("fault.slow_io", vec![("factor", ArgValue::F64(factor))])
            }
        };
        args.push(("op", ArgValue::from(op)));
        sink.instant_with(TraceCategory::Fault, name, now, args);
    }

    fn apply(&self, fault: Option<FaultKind>, op: &'static str) -> io::Result<()> {
        if let Some(kind) = fault {
            self.emit_fault(kind, op);
        }
        match fault {
            Some(FaultKind::WriteError) | Some(FaultKind::ReadError) => Err(io::Error::other(
                format!("injected {op} fault on target `{}`", self.inner.name()),
            )),
            Some(FaultKind::EnduranceExhausted) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!(
                    "injected endurance exhaustion on target `{}` (wear {:.2})",
                    self.inner.name(),
                    self.inner.wear_fraction()
                ),
            )),
            Some(FaultKind::SlowIo { factor }) => {
                if let Some(io) = &*self.io.lock() {
                    io.throttle(factor);
                }
                Ok(())
            }
            None => Ok(()),
        }
    }
}

impl OffloadTarget for FaultyTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn write(&self, key: &TensorKey, data: Option<&[u8]>, len: u64) -> io::Result<()> {
        let fault = self.plan.lock().on_write(len, self.inner.wear_fraction());
        self.apply(fault, "write")?;
        self.inner.write(key, data, len)
    }

    fn read(&self, key: &TensorKey) -> io::Result<Option<Vec<u8>>> {
        // Read sizes are unknown until the bytes arrive; reads count as
        // operations but do not advance byte-threshold triggers.
        let fault = self.plan.lock().on_read(0);
        self.apply(fault, "read")?;
        self.inner.read(key)
    }

    fn remove(&self, key: &TensorKey) {
        self.inner.remove(key);
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn wear_fraction(&self) -> f64 {
        self.inner.wear_fraction()
    }

    fn write_batch(&self, items: &[BatchItem<'_>]) -> io::Result<()> {
        // Run the plan once per member so byte-threshold and nth-op
        // triggers advance exactly as on the uncoalesced path; any
        // member's fault fails the whole segment before a byte lands
        // (segment-level degradation, per the recovery contract).
        for (_, _, len) in items {
            let fault = self.plan.lock().on_write(*len, self.inner.wear_fraction());
            self.apply(fault, "write")?;
        }
        self.inner.write_batch(items)
    }

    fn wear_snapshot(&self) -> Option<WearMeter> {
        self.inner.wear_snapshot()
    }
}

impl fmt::Debug for FaultyTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyTarget")
            .field("inner", &self.inner.name())
            .field("log", &self.fault_log())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::CpuTarget;
    use ssdtrain_simhw::{FaultTrigger, SimClock};

    fn key(stamp: u64) -> TensorKey {
        TensorKey {
            stamp,
            shape: vec![4],
        }
    }

    #[test]
    fn write_faults_surface_as_io_errors() {
        let plan =
            FaultPlan::new(1).with_fault(FaultTrigger::NthOp { nth: 1 }, FaultKind::WriteError);
        let t = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
        assert!(t.write(&key(1), Some(&[1, 2]), 2).is_ok());
        let err = t.write(&key(2), Some(&[3, 4]), 2).unwrap_err();
        assert!(err.to_string().contains("injected write fault"), "{err}");
        // The failed write never reached the inner target.
        assert_eq!(t.bytes_written(), 2);
        assert!(t.read(&key(2)).is_err(), "inner target has no key 2");
    }

    #[test]
    fn endurance_exhaustion_reports_storage_full() {
        let plan = FaultPlan::new(1).with_recurring_fault(
            FaultTrigger::ByteThreshold { bytes: 4 },
            FaultKind::EnduranceExhausted,
        );
        let t = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
        assert!(t.write(&key(1), None, 4).is_err());
        let err = t.write(&key(2), None, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn slow_io_throttles_the_attached_engine() {
        let plan = FaultPlan::new(1).with_fault(
            FaultTrigger::NthOp { nth: 0 },
            FaultKind::SlowIo { factor: 2.0 },
        );
        let t = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
        let io = IoEngine::new(SimClock::new(), 1e9, 2e9);
        t.attach_io(io.clone());
        // The write itself succeeds; the engine is slower afterwards.
        assert!(t.write(&key(1), None, 4).is_ok());
        assert_eq!(io.effective_write_bps(), 0.5e9);
        assert_eq!(io.effective_read_bps(), 1e9);
        assert_eq!(t.fault_log().slowdowns, 1);
    }

    #[test]
    fn a_member_fault_fails_the_whole_batch_before_bytes_land() {
        let plan =
            FaultPlan::new(1).with_fault(FaultTrigger::NthOp { nth: 2 }, FaultKind::WriteError);
        let t = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
        let keys: Vec<TensorKey> = (0..4).map(key).collect();
        let items: Vec<BatchItem<'_>> = keys.iter().map(|k| (k, None, 8u64)).collect();
        // Member 2 faults -> the segment fails as one unit and nothing
        // reached the inner target.
        assert!(t.write_batch(&items).is_err());
        assert_eq!(t.bytes_written(), 0);
        assert_eq!(t.fault_log().write_faults, 1);
        // The plan is exhausted; the retried segment lands whole.
        assert!(t.write_batch(&items).is_ok());
        assert_eq!(t.bytes_written(), 32);
    }

    #[test]
    fn reads_pass_through_when_no_rule_matches() {
        let plan = FaultPlan::new(1);
        let t = FaultyTarget::new(Arc::new(CpuTarget::new(1 << 20)), plan);
        t.write(&key(1), Some(&[5]), 1).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.read(&key(1)).unwrap().unwrap(), vec![5]); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.fault_log().ops, 2);
    }
}
