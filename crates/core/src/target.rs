//! Offload targets: where activation bytes go (paper Figure 5).
//!
//! [`SsdTarget`] writes real files under a spill directory — functional
//! round trips actually cross the filesystem — and meters SSD wear.
//! [`CpuTarget`] models the host-pinned-memory pool of the paper's CPU
//! offloader (kept "for future work on clusters with massive remote SSD
//! storage"); its pool size is fixed up front, mirroring the profiling-
//! based allocation.

use crate::id::TensorKey;
use parking_lot::Mutex;
use ssdtrain_simhw::WearMeter;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One member of a coalesced segment write: key, optional payload
/// (`None` in symbolic execution), and length in bytes.
pub type BatchItem<'a> = (&'a TensorKey, Option<&'a [u8]>, u64);

/// A device (or memory pool) activation bytes can be stored to and read
/// back from.
///
/// `data` is `None` in symbolic execution: the target must account the
/// traffic without materialising payloads.
pub trait OffloadTarget: Send + Sync {
    /// Short target name for reports.
    fn name(&self) -> &str;

    /// Persists `len` bytes under `key`.
    ///
    /// # Errors
    /// Returns any underlying I/O error (e.g. spill directory removed).
    fn write(&self, key: &TensorKey, data: Option<&[u8]>, len: u64) -> io::Result<()>;

    /// Reads the bytes stored under `key`; `Ok(None)` for symbolic
    /// entries.
    ///
    /// # Errors
    /// Returns an error if `key` was never written or the read fails.
    fn read(&self, key: &TensorKey) -> io::Result<Option<Vec<u8>>>;

    /// Drops the entry for `key` (idempotent).
    fn remove(&self, key: &TensorKey);

    /// Host bytes written so far.
    fn bytes_written(&self) -> u64;

    /// Fraction of the device's endurance budget consumed, in `[0, 1]`.
    /// Targets without a wear model report `0.0`.
    fn wear_fraction(&self) -> f64 {
        0.0
    }

    /// Persists a sealed segment: every member lands or none does. The
    /// default unwinds already-written members on the first failure, so
    /// a failed segment degrades as one unit (per [`RecoveryPolicy`]
    /// semantics), never as a partial write. Devices with a cheaper
    /// sequential path override this — [`SsdTarget`] charges the wear
    /// meter one write *operation* for the whole segment.
    ///
    /// [`RecoveryPolicy`]: crate::RecoveryPolicy
    ///
    /// # Errors
    /// Returns the first member's I/O error after unwinding.
    fn write_batch(&self, items: &[BatchItem<'_>]) -> io::Result<()> {
        for (i, (key, data, len)) in items.iter().enumerate() {
            if let Err(e) = self.write(key, *data, *len) {
                for (done, _, _) in &items[..i] {
                    self.remove(done);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Snapshot of the device's wear meter, when it has one (`None` for
    /// targets without a wear model). Benches read effective write
    /// amplification through this without downcasting.
    fn wear_snapshot(&self) -> Option<WearMeter> {
        None
    }
}

// ---------------------------------------------------------------------
// SSD target
// ---------------------------------------------------------------------

struct SsdState {
    wear: WearMeter,
    symbolic_lens: HashMap<TensorKey, u64>,
}

/// NVMe SSD offload target: one file per tensor under a spill directory,
/// with wear metering against the array's endurance budget.
pub struct SsdTarget {
    dir: PathBuf,
    state: Mutex<SsdState>,
}

impl SsdTarget {
    /// Creates the target, creating `dir` if needed.
    ///
    /// # Errors
    /// Returns an error if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>, wear: WearMeter) -> io::Result<SsdTarget> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(SsdTarget {
            dir,
            state: Mutex::new(SsdState {
                wear,
                symbolic_lens: HashMap::new(),
            }),
        })
    }

    fn path_for(&self, key: &TensorKey) -> PathBuf {
        let dims: Vec<String> = key.shape.iter().map(|d| d.to_string()).collect();
        self.dir
            .join(format!("t{}_{}.act", key.stamp, dims.join("x")))
    }

    /// Snapshot of the wear meter.
    pub fn wear(&self) -> WearMeter {
        self.state.lock().wear.clone()
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl OffloadTarget for SsdTarget {
    fn name(&self) -> &str {
        "ssd"
    }

    fn write(&self, key: &TensorKey, data: Option<&[u8]>, len: u64) -> io::Result<()> {
        {
            let mut s = self.state.lock();
            s.wear.record_write(len);
            if data.is_none() {
                s.symbolic_lens.insert(key.clone(), len);
            }
        }
        if let Some(bytes) = data {
            fs::write(self.path_for(key), bytes)?;
        }
        Ok(())
    }

    fn read(&self, key: &TensorKey) -> io::Result<Option<Vec<u8>>> {
        if self.state.lock().symbolic_lens.contains_key(key) {
            return Ok(None);
        }
        fs::read(self.path_for(key)).map(Some)
    }

    fn remove(&self, key: &TensorKey) {
        if self.state.lock().symbolic_lens.remove(key).is_some() {
            return;
        }
        let _ = fs::remove_file(self.path_for(key));
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().wear.host_bytes
    }

    fn wear_fraction(&self) -> f64 {
        self.state.lock().wear.wear_fraction()
    }

    fn write_batch(&self, items: &[BatchItem<'_>]) -> io::Result<()> {
        // One sequential segment = one write operation on the media:
        // the whole point of coalescing is paying the per-op overhead
        // once instead of `items.len()` times.
        {
            let mut s = self.state.lock();
            let total: u64 = items.iter().map(|(_, _, len)| *len).sum();
            s.wear.record_batch(total, 1);
            for (key, data, len) in items {
                if data.is_none() {
                    s.symbolic_lens.insert((*key).clone(), *len);
                }
            }
        }
        for (i, (key, data, _)) in items.iter().enumerate() {
            if let Some(bytes) = data {
                if let Err(e) = fs::write(self.path_for(key), bytes) {
                    for (done, _, _) in &items[..i] {
                        self.remove(done);
                    }
                    for (pending, pending_data, _) in &items[i..] {
                        if pending_data.is_none() {
                            self.state.lock().symbolic_lens.remove(*pending);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn wear_snapshot(&self) -> Option<WearMeter> {
        Some(self.wear())
    }
}

impl fmt::Debug for SsdTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SsdTarget")
            .field("dir", &self.dir)
            .field("host_bytes", &self.bytes_written())
            .finish()
    }
}

// ---------------------------------------------------------------------
// CPU (host pinned memory) target
// ---------------------------------------------------------------------

struct CpuState {
    pool: HashMap<TensorKey, Option<Vec<u8>>>,
    used: u64,
    lens: HashMap<TensorKey, u64>,
    written: u64,
}

/// Host-memory offload target backed by a bounded pinned pool.
pub struct CpuTarget {
    pool_bytes: u64,
    state: Mutex<CpuState>,
}

impl CpuTarget {
    /// Creates a target with a pinned pool of `pool_bytes` (the paper
    /// sizes this by profiling the first training step).
    pub fn new(pool_bytes: u64) -> CpuTarget {
        CpuTarget {
            pool_bytes,
            state: Mutex::new(CpuState {
                pool: HashMap::new(),
                used: 0,
                lens: HashMap::new(),
                written: 0,
            }),
        }
    }

    /// Pool capacity in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }

    /// Bytes currently held in the pool.
    pub fn used_bytes(&self) -> u64 {
        self.state.lock().used
    }
}

impl OffloadTarget for CpuTarget {
    fn name(&self) -> &str {
        "cpu"
    }

    fn write(&self, key: &TensorKey, data: Option<&[u8]>, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        // Overwriting a live key reuses its slot: project occupancy with
        // the prior entry's bytes returned first, so rewrites never
        // double-count against the pool.
        let prior = s.lens.get(key).copied().unwrap_or(0);
        let projected = s.used - prior + len;
        if projected > self.pool_bytes {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                format!(
                    "pinned pool exhausted: {} - {prior} + {len} > {}",
                    s.used, self.pool_bytes
                ),
            ));
        }
        s.used = projected;
        s.written += len;
        s.lens.insert(key.clone(), len);
        s.pool.insert(key.clone(), data.map(|d| d.to_vec()));
        Ok(())
    }

    fn read(&self, key: &TensorKey) -> io::Result<Option<Vec<u8>>> {
        let s = self.state.lock();
        match s.pool.get(key) {
            Some(Some(bytes)) => Ok(Some(bytes.clone())),
            Some(None) => Ok(None),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{key} not in pinned pool"),
            )),
        }
    }

    fn remove(&self, key: &TensorKey) {
        let mut s = self.state.lock();
        if s.pool.remove(key).is_some() {
            let len = s.lens.remove(key).unwrap_or(0);
            s.used = s.used.saturating_sub(len);
        }
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().written
    }
}

impl fmt::Debug for CpuTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuTarget")
            .field("pool_bytes", &self.pool_bytes)
            .field("used", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(stamp: u64) -> TensorKey {
        TensorKey {
            stamp,
            shape: vec![4, 2],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("ssdtrain-target-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn ssd_roundtrip_through_filesystem() {
        let dir = tmpdir("rt");
        let t = SsdTarget::new(&dir, WearMeter::new(1e12, 1.0)).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let k = key(1);
        let payload = vec![1u8, 2, 3, 4];
        t.write(&k, Some(&payload), 4).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.read(&k).unwrap().unwrap(), payload); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.bytes_written(), 4);
        t.remove(&k);
        assert!(t.read(&k).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ssd_symbolic_entries_account_without_payload() {
        let dir = tmpdir("sym");
        let t = SsdTarget::new(&dir, WearMeter::new(1e12, 1.0)).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let k = key(2);
        t.write(&k, None, 1024).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.read(&k).unwrap(), None); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.bytes_written(), 1024);
        assert!((t.wear().wear_fraction() - 1024.0 / 1e12).abs() < 1e-18);
        t.remove(&k);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ssd_wear_accumulates_across_writes() {
        let dir = tmpdir("wear");
        let t = SsdTarget::new(&dir, WearMeter::new(1000.0, 1.0)).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        t.write(&key(3), None, 250).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        t.write(&key(4), None, 250).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert!((t.wear().wear_fraction() - 0.5).abs() < 1e-12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cpu_pool_bounds_capacity() {
        let t = CpuTarget::new(100);
        t.write(&key(1), None, 60).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let err = t.write(&key(2), None, 60).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        t.remove(&key(1));
        assert_eq!(t.used_bytes(), 0);
        t.write(&key(2), None, 60).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
    }

    #[test]
    fn cpu_pool_reuses_bytes_across_write_remove_write() {
        let t = CpuTarget::new(100);
        for round in 0..5u64 {
            t.write(&key(round), None, 100).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
            assert_eq!(t.used_bytes(), 100);
            t.remove(&key(round));
            assert_eq!(t.used_bytes(), 0, "round {round} leaked pool bytes");
        }
        // Five full-pool rounds fit because remove returns bytes; total
        // write traffic still accumulates.
        assert_eq!(t.bytes_written(), 500);
    }

    #[test]
    fn cpu_pool_overwrite_replaces_instead_of_double_counting() {
        let t = CpuTarget::new(100);
        let k = key(7);
        t.write(&k, Some(&[1; 80]), 80).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
                                                  // Rewriting the same key must reuse its slot, not add 80 + 80.
        t.write(&k, Some(&[2; 80]), 80).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.used_bytes(), 80);
        assert_eq!(t.read(&k).unwrap().unwrap(), vec![2; 80]); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
                                                               // Shrinking rewrite frees the difference...
        t.write(&k, None, 10).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.used_bytes(), 10);
        // ...and a growing rewrite that exceeds the pool is refused
        // without corrupting the accounting.
        let err = t.write(&k, None, 120).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        assert_eq!(t.used_bytes(), 10);
        t.remove(&k);
        assert_eq!(t.used_bytes(), 0);
    }

    #[test]
    fn ssd_write_batch_charges_one_wear_op() {
        let dir = tmpdir("batch");
        let wear = WearMeter::new(1e12, 1.0).with_write_overhead(4096);
        let t = SsdTarget::new(&dir, wear).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let keys: Vec<TensorKey> = (0..4).map(key).collect();
        let items: Vec<BatchItem<'_>> = keys.iter().map(|k| (k, None, 256u64)).collect();
        t.write_batch(&items).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let w = t.wear();
        assert_eq!(w.host_bytes, 1024);
        // 1024 payload + ONE 4096 overhead, not four.
        assert_eq!(w.media_bytes, 1024 + 4096);
        // Members keep their identity for loads.
        assert_eq!(t.read(&keys[2]).unwrap(), None); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ssd_wear_snapshot_matches_inherent_wear() {
        let dir = tmpdir("snap");
        let t = SsdTarget::new(&dir, WearMeter::new(1e12, 1.0)).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        t.write(&key(1), None, 512).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.wear_snapshot(), Some(t.wear()));
        assert_eq!(CpuTarget::new(64).wear_snapshot(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_write_batch_unwinds_on_member_failure() {
        let t = CpuTarget::new(100);
        let keys: Vec<TensorKey> = (0..3).map(key).collect();
        // 40 + 40 fit, the third member overflows the pool.
        let items: Vec<BatchItem<'_>> = keys.iter().map(|k| (k, None, 40u64)).collect();
        let err = t.write_batch(&items).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        // All-or-nothing: the two successful members were unwound.
        assert_eq!(t.used_bytes(), 0);
        assert!(t.read(&keys[0]).is_err());
    }

    #[test]
    fn cpu_roundtrip() {
        let t = CpuTarget::new(1024);
        let k = key(5);
        t.write(&k, Some(&[9, 9]), 2).unwrap(); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.read(&k).unwrap().unwrap(), vec![9, 9]); // ssdtrain-lint: allow(panic-free-hot-path): test-only panic; failure should abort the test
        assert_eq!(t.bytes_written(), 2);
        assert!(t.read(&key(6)).is_err());
    }
}
