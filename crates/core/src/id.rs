//! Tensor identity — the paper's `get_id()` (Section 3.3.1).
//!
//! PyTorch's native `id()` is a memory address, which gets recycled once
//! an offloaded tensor is garbage-collected; the paper instead stamps each
//! tensor's *underlying storage* with the timestamp at which `get_id()`
//! first saw it and combines that with the tensor's shape. Because the
//! stamp lives on the storage, a transposed parameter view receives the
//! same stamp as its base across steps, and re-wrapped `torch.Tensor`
//! objects for the same data deduplicate. We reproduce this with a
//! write-once slot on [`ssdtrain_tensor::Storage`] and a process-global
//! monotonic logical timestamp.

use ssdtrain_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of a saved tensor: the storage's first-seen stamp plus the
/// view's shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorKey {
    /// First-seen logical timestamp of the underlying storage.
    pub stamp: u64,
    /// Dimension extents of the saved view.
    pub shape: Vec<usize>,
}

impl std::fmt::Display for TensorKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}x{:?}", self.stamp, self.shape)
    }
}

fn next_logical_timestamp() -> u64 {
    static CLOCK: AtomicU64 = AtomicU64::new(1);
    CLOCK.fetch_add(1, Ordering::Relaxed)
}

/// Returns the stable identity of `t`, stamping its storage on first
/// sight.
///
/// ```
/// use ssdtrain::id::tensor_key;
/// use ssdtrain_tensor::{Device, Tensor};
/// let dev = Device::cpu();
/// let t = Tensor::zeros([2, 3], &dev);
/// // Views of the same storage share a stamp; shape tells them apart.
/// assert_eq!(tensor_key(&t).stamp, tensor_key(&t.t()).stamp);
/// assert_ne!(tensor_key(&t), tensor_key(&t.t()));
/// ```
pub fn tensor_key(t: &Tensor) -> TensorKey {
    let stamp = t.storage().stamp_once(next_logical_timestamp());
    TensorKey {
        stamp,
        // ssdtrain-lint: allow(no-alloc-hot-loop): the key owns its shape
        // (rank-length vector); key construction is its identity
        shape: t.dims().to_vec(),
    }
}

/// Returns the storage stamp `t` carries, stamping it first if needed.
/// Used for parameter registration, which must match *any view* of the
/// parameter (shape-agnostic).
pub fn storage_stamp(t: &Tensor) -> u64 {
    t.storage().stamp_once(next_logical_timestamp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdtrain_tensor::{Device, Tensor};

    #[test]
    fn same_tensor_same_key() {
        let dev = Device::cpu();
        let t = Tensor::zeros([2, 3], &dev);
        assert_eq!(tensor_key(&t), tensor_key(&t));
        assert_eq!(tensor_key(&t), tensor_key(&t.clone()));
    }

    #[test]
    fn transpose_shares_stamp_but_not_key() {
        let dev = Device::cpu();
        let t = Tensor::zeros([2, 3], &dev);
        let tt = t.t();
        let k = tensor_key(&t);
        let kt = tensor_key(&tt);
        assert_eq!(k.stamp, kt.stamp, "views share the storage stamp");
        assert_ne!(k, kt, "shape distinguishes the views");
        // The transpose's key is consistent across calls (the paper's
        // cross-step consistency property).
        assert_eq!(kt, tensor_key(&tt));
    }

    #[test]
    fn distinct_storages_never_collide_even_after_drop() {
        // The failure mode the paper fixes: address reuse after GC. Our
        // stamps are monotonic, so a new storage can never reuse an old
        // identity.
        let dev = Device::cpu();
        let k1 = {
            let t = Tensor::zeros([4], &dev);
            tensor_key(&t)
        };
        let t2 = Tensor::zeros([4], &dev);
        let k2 = tensor_key(&t2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn reshape_of_same_storage_with_same_shape_deduplicates() {
        let dev = Device::cpu();
        let t = Tensor::zeros([6], &dev);
        let a = t.reshape([2, 3]);
        let b = t.reshape([2, 3]);
        assert_eq!(tensor_key(&a), tensor_key(&b));
    }

    #[test]
    fn storage_stamp_is_shape_agnostic() {
        let dev = Device::cpu();
        let t = Tensor::zeros([2, 3], &dev);
        assert_eq!(storage_stamp(&t), storage_stamp(&t.t()));
        assert_eq!(storage_stamp(&t), storage_stamp(&t.reshape([6])));
    }
}
