//! End-to-end behaviour of the tensor cache on real autograd graphs:
//! numerics equivalence, memory reclaim, forwarding, deduplication,
//! parameter exclusion, stall accounting and adaptive profiling.

use ssdtrain::{CpuTarget, IoEngine, OffloadTarget, SsdTarget, TensorCache, TensorCacheConfig};
use ssdtrain_autograd::{ops, ExecObserver, Graph, OpCost, Phase, Var};
use ssdtrain_simhw::{GpuMemory, SimClock, WearMeter};
use ssdtrain_tensor::{Device, MemClass, Prng, Tensor};
use std::sync::Arc;

/// Advances the simulated clock by a fixed duration per operator, so
/// store/load jobs overlap with "compute" deterministically.
struct FixedOpTime {
    clock: SimClock,
    secs_per_op: f64,
}

impl ExecObserver for FixedOpTime {
    fn on_op(&self, _name: &str, _cost: &OpCost, _phase: Phase) {
        self.clock.advance_by(self.secs_per_op);
    }
}

struct Rig {
    dev: Device,
    graph: Graph,
    cache: Arc<TensorCache>,
    mem: Arc<GpuMemory>,
    /// Kept alive so tests can advance simulated time explicitly.
    #[allow(dead_code)]
    clock: SimClock,
}

fn rig(config: TensorCacheConfig, write_bps: f64, read_bps: f64, secs_per_op: f64) -> Rig {
    let clock = SimClock::new();
    let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 40));
    let dev = Device::cpu();
    dev.set_tracker(mem.clone());
    let io = IoEngine::new(clock.clone(), write_bps, read_bps);
    let target = Arc::new(CpuTarget::new(1 << 40));
    let cache = TensorCache::new(config, target, io, mem.clone());
    let graph = Graph::new(&dev, 7);
    cache.install(&graph);
    graph.set_observer(Arc::new(FixedOpTime {
        clock: clock.clone(),
        secs_per_op,
    }));
    Rig {
        dev,
        graph,
        cache,
        mem,
        clock,
    }
}

/// A two-module MLP forward pass under module scopes; returns the loss.
fn two_layer_forward(g: &Graph, x: &Tensor, w1: &Var, w2: &Var) -> ssdtrain_autograd::Value {
    let xv = g.constant(x.clone());
    let h1 = g.scoped("l0", || {
        let h = ops::matmul(g, &xv, &g.leaf(w1));
        ops::gelu(g, &h)
    });
    let h2 = g.scoped("l1", || {
        let h = ops::matmul(g, &h1, &g.leaf(w2));
        ops::gelu(g, &h)
    });
    ops::mean_all(g, &h2)
}

fn offload_all_config() -> TensorCacheConfig {
    TensorCacheConfig {
        min_offload_numel: 0,
        adaptive: false,
        ..TensorCacheConfig::default()
    }
}

fn run_step(r: &Rig, x: &Tensor, w1: &Var, w2: &Var) -> f32 {
    r.cache.begin_step();
    r.graph.reset_tape();
    r.graph.set_phase(Phase::Forward);
    r.cache.register_parameter(&w1.tensor());
    r.cache.register_parameter(&w2.tensor());
    let loss = two_layer_forward(&r.graph, x, w1, w2);
    r.cache.prefetch_last_module();
    let l = loss.tensor().item();
    r.graph.backward(&loss);
    r.cache.wait_io();
    l
}

fn sgd_step(vars: &[&Var], lr: f32) {
    for v in vars {
        if let Some(g) = v.grad() {
            let next = v.tensor().sub(&g.scale(lr));
            v.set_tensor(next.deep_clone_as(MemClass::Parameter));
            v.zero_grad();
        }
    }
}

fn init_weights(dev: &Device, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = Prng::seed_from_u64(seed);
    let (w1, w2) = dev.with_class(MemClass::Parameter, || {
        (
            Tensor::randn([8, 8], 0.4, &mut rng, dev),
            Tensor::randn([8, 8], 0.4, &mut rng, dev),
        )
    });
    let x = Tensor::randn([4, 8], 1.0, &mut rng, dev);
    (w1, w2, x)
}

// ---------------------------------------------------------------------
// Numerics
// ---------------------------------------------------------------------

#[test]
fn offloaded_training_is_bit_identical_to_keep() {
    // Reference run: plain graph, no cache.
    let dev_ref = Device::cpu();
    let (w1t, w2t, xt) = init_weights(&dev_ref, 21);
    let w1_ref = Var::new("w1", w1t.clone());
    let w2_ref = Var::new("w2", w2t.clone());
    let mut ref_losses = Vec::new();
    for _ in 0..3 {
        let g = Graph::new(&dev_ref, 7);
        let loss = two_layer_forward(&g, &xt, &w1_ref, &w2_ref);
        ref_losses.push(loss.tensor().item());
        g.backward(&loss);
        sgd_step(&[&w1_ref, &w2_ref], 0.1);
    }

    // Offloaded run on the cache rig (slow enough that real reloads
    // happen, fast ops so stores finish before backward).
    let r = rig(offload_all_config(), 1e6, 1e6, 1.0);
    let w1 = Var::new("w1", w1t.deep_clone_as(MemClass::Parameter));
    let w2 = Var::new("w2", w2t.deep_clone_as(MemClass::Parameter));
    // Recreate x on the tracked device for identical values.
    let x = Tensor::from_vec(xt.to_vec(), [4, 8], &r.dev);
    let mut off_losses = Vec::new();
    for _ in 0..3 {
        off_losses.push(run_step(&r, &x, &w1, &w2));
        sgd_step(&[&w1, &w2], 0.1);
    }

    assert_eq!(ref_losses, off_losses, "losses must match bit-for-bit");
    assert_eq!(w1_ref.tensor().to_vec(), w1.tensor().to_vec());
    assert_eq!(w2_ref.tensor().to_vec(), w2.tensor().to_vec());
    // And the run actually exercised the offload path.
    let stats = r.cache.stats();
    assert!(stats.store_jobs > 0, "{stats:?}");
    assert!(
        stats.sync_loads + stats.prefetches + stats.forwarded > 0,
        "{stats:?}"
    );
}

// ---------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------

#[test]
fn offloading_reduces_activation_peak() {
    // Keep run (hooks installed but nothing offloads: threshold huge).
    let keep_cfg = TensorCacheConfig {
        min_offload_numel: usize::MAX,
        ..TensorCacheConfig::default()
    };
    let rk = rig(keep_cfg, 1e9, 1e9, 0.001);
    let (w1t, w2t, xt) = init_weights(&rk.dev, 5);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&rk, &xt, &w1, &w2);
    let keep_peak = rk.mem.peak_activations();

    // Offload run with ample bandwidth: stores commit quickly.
    let ro = rig(offload_all_config(), 1e12, 1e12, 0.001);
    let (w1t, w2t, xt) = init_weights(&ro.dev, 5);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&ro, &xt, &w1, &w2);
    let off_peak = ro.mem.peak_activations();

    assert!(
        off_peak < keep_peak,
        "offload peak {off_peak} must be below keep peak {keep_peak}"
    );
}

#[test]
fn all_records_released_after_step() {
    let r = rig(offload_all_config(), 1e9, 1e9, 0.001);
    let (w1t, w2t, xt) = init_weights(&r.dev, 9);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&r, &xt, &w1, &w2);
    r.graph.reset_tape();
    r.cache.flush();
    // The step input is still held by this test (like a dataloader
    // buffer); everything else must be gone.
    assert_eq!(r.mem.resident(MemClass::Activation), xt.bytes());
    drop(xt);
    assert_eq!(r.mem.resident(MemClass::Activation), 0);
}

// ---------------------------------------------------------------------
// Forwarding and cancellation
// ---------------------------------------------------------------------

#[test]
fn slow_stores_are_forwarded_and_queued_ones_cancelled() {
    // Glacial write bandwidth: every store is still in flight when
    // backward needs the tensor -> forwarding; queued stores cancel.
    let r = rig(offload_all_config(), 1.0, 1.0, 1e-6);
    let (w1t, w2t, xt) = init_weights(&r.dev, 13);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    let loss = run_step(&r, &xt, &w1, &w2);
    assert!(loss.is_finite());
    let stats = r.cache.stats();
    assert!(stats.forwarded > 0, "{stats:?}");
    assert!(stats.cancelled_stores > 0, "{stats:?}");
    // Forwarding means no reload traffic for those tensors and no stall.
    assert_eq!(stats.sync_loads + stats.prefetches, 0, "{stats:?}");
    assert!(w1.grad().is_some() && w2.grad().is_some());
}

#[test]
fn forwarding_disabled_exposes_store_latency() {
    let cfg = TensorCacheConfig {
        forwarding: false,
        cancel_forwarded_stores: false,
        prefetch: false,
        ..offload_all_config()
    };
    let r = rig(cfg, 100.0, 100.0, 1e-6);
    let (w1t, w2t, xt) = init_weights(&r.dev, 17);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&r, &xt, &w1, &w2);
    let stats = r.cache.stats();
    assert!(stats.stall_secs > 0.0, "{stats:?}");
    assert_eq!(stats.forwarded, 0);
    assert!(stats.sync_loads > 0, "{stats:?}");
}

// ---------------------------------------------------------------------
// Deduplication and parameter exclusion
// ---------------------------------------------------------------------

#[test]
fn duplicate_saves_deduplicate_to_one_store() {
    let r = rig(offload_all_config(), 1e9, 1e9, 0.0);
    let x = Tensor::from_vec(vec![1.0; 64], [8, 8], &r.dev);
    r.cache.begin_step();
    r.graph.set_phase(Phase::Forward);
    let xv = r.graph.constant(x);
    // `mul` saves both inputs; using the same value twice saves the same
    // tensor identity twice.
    let y = r.graph.scoped("m", || ops::mul(&r.graph, &xv, &xv));
    let loss = ops::sum_all(&r.graph, &y);
    let stats_before = r.cache.stats();
    assert_eq!(stats_before.store_jobs, 1, "{stats_before:?}");
    assert_eq!(stats_before.dedup_hits, 1, "{stats_before:?}");
    r.graph.backward(&loss);
}

#[test]
fn dedup_disabled_stores_twice() {
    let cfg = TensorCacheConfig {
        dedup: false,
        ..offload_all_config()
    };
    let r = rig(cfg, 1e9, 1e9, 0.0);
    let x = Tensor::from_vec(vec![1.0; 64], [8, 8], &r.dev);
    r.cache.begin_step();
    r.graph.set_phase(Phase::Forward);
    let xv = r.graph.constant(x);
    let y = r.graph.scoped("m", || ops::mul(&r.graph, &xv, &xv));
    let _loss = ops::sum_all(&r.graph, &y);
    assert_eq!(r.cache.stats().store_jobs, 2);
    let _ = y;
}

#[test]
fn parameters_and_their_transposes_are_never_offloaded() {
    let r = rig(offload_all_config(), 1e9, 1e9, 0.0);
    let (w1t, _w2t, xt) = init_weights(&r.dev, 23);
    let w1 = Var::new("w1", w1t);
    r.cache.begin_step();
    r.cache.register_parameter(&w1.tensor());
    r.graph.set_phase(Phase::Forward);
    let xv = r.graph.constant(xt);
    // matmul saves x and w; w must be excluded, x offloaded.
    let y = r
        .graph
        .scoped("m", || ops::matmul(&r.graph, &xv, &r.graph.leaf(&w1)));
    let loss = ops::mean_all(&r.graph, &y);
    let stats = r.cache.stats();
    assert_eq!(stats.store_jobs, 1, "only the input offloads: {stats:?}");
    r.graph.backward(&loss);
    assert!(w1.grad().is_some());
}

// ---------------------------------------------------------------------
// Small-tensor threshold and backward-phase saves
// ---------------------------------------------------------------------

#[test]
fn small_tensors_stay_resident() {
    // Default threshold is 2^20 elements; a 64-element tensor stays.
    let r = rig(TensorCacheConfig::default(), 1e9, 1e9, 0.0);
    let (w1t, w2t, xt) = init_weights(&r.dev, 29);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&r, &xt, &w1, &w2);
    let stats = r.cache.stats();
    assert_eq!(stats.store_jobs, 0, "{stats:?}");
    assert_eq!(stats.offloaded_bytes, 0);
}

// ---------------------------------------------------------------------
// Profiling and the adaptive plan
// ---------------------------------------------------------------------

#[test]
fn profiling_step_builds_module_profile_and_plan() {
    let r = rig(
        TensorCacheConfig {
            min_offload_numel: 0,
            ..TensorCacheConfig::default()
        },
        1e9,
        1e9,
        0.001,
    );
    let (w1t, w2t, xt) = init_weights(&r.dev, 31);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    r.cache.begin_profile_step();
    r.graph.set_phase(Phase::Forward);
    r.cache.register_parameter(&w1.tensor());
    r.cache.register_parameter(&w2.tensor());
    let loss = two_layer_forward(&r.graph, &xt, &w1, &w2);
    let (profile, plan) = r.cache.end_profile_step();
    r.graph.backward(&loss);

    assert_eq!(profile.modules.len(), 2);
    assert_eq!(profile.modules[0].path, "l0");
    assert_eq!(profile.modules[1].path, "l1");
    assert!(profile.modules.iter().all(|m| m.offload_bytes > 0));
    assert!(profile.modules.iter().all(|m| m.fwd_secs > 0.0));
    assert!(profile.fwd_total_secs > 0.0);
    // Ample bandwidth: the plan keeps (at least) the last module.
    assert!(plan.keeps("l1"));
    assert!(!plan.keeps("l0"));
}

#[test]
fn kept_modules_do_not_offload_after_planning() {
    let r = rig(
        TensorCacheConfig {
            min_offload_numel: 0,
            ..TensorCacheConfig::default()
        },
        1e9,
        1e9,
        0.001,
    );
    let (w1t, w2t, xt) = init_weights(&r.dev, 37);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    // Profile step.
    r.cache.begin_profile_step();
    r.graph.set_phase(Phase::Forward);
    r.cache.register_parameter(&w1.tensor());
    r.cache.register_parameter(&w2.tensor());
    let loss = two_layer_forward(&r.graph, &xt, &w1, &w2);
    let _ = r.cache.end_profile_step();
    r.graph.backward(&loss);
    r.graph.reset_tape();

    // Planned step: module l1 is kept, so only l0's two tensors store.
    let profile_jobs = {
        run_step(&r, &xt, &w1, &w2);
        r.cache.stats()
    };
    assert!(profile_jobs.kept > 0, "{profile_jobs:?}");
    assert_eq!(profile_jobs.store_jobs, 2, "{profile_jobs:?}");
}

// ---------------------------------------------------------------------
// Symbolic execution
// ---------------------------------------------------------------------

#[test]
fn symbolic_offload_accounts_identical_bytes_with_f32_widths() {
    // Numeric rig.
    let rn = rig(offload_all_config(), 1e9, 1e9, 0.001);
    let (w1t, w2t, xt) = init_weights(&rn.dev, 41);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    run_step(&rn, &xt, &w1, &w2);
    let numeric_bytes = rn.cache.stats().offloaded_bytes;

    // Symbolic rig with the same shapes; force F32 accounting to match
    // the numeric device's default dtype.
    let clock = SimClock::new();
    let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 40));
    let dev = Device::symbolic();
    dev.set_default_dtype(ssdtrain_tensor::DType::F32);
    dev.set_tracker(mem.clone());
    let io = IoEngine::new(clock.clone(), 1e9, 1e9);
    let cache = TensorCache::new(
        offload_all_config(),
        Arc::new(CpuTarget::new(1 << 40)),
        io,
        mem.clone(),
    );
    let graph = Graph::new(&dev, 7);
    cache.install(&graph);
    graph.set_observer(Arc::new(FixedOpTime {
        clock: clock.clone(),
        secs_per_op: 0.001,
    }));
    let w1s = Var::new("w1", Tensor::zeros([8, 8], &dev));
    let w2s = Var::new("w2", Tensor::zeros([8, 8], &dev));
    let xs = Tensor::zeros([4, 8], &dev);
    cache.begin_step();
    graph.set_phase(Phase::Forward);
    cache.register_parameter(&w1s.tensor());
    cache.register_parameter(&w2s.tensor());
    let loss = two_layer_forward(&graph, &xs, &w1s, &w2s);
    cache.prefetch_last_module();
    graph.backward(&loss);
    cache.wait_io();

    assert_eq!(cache.stats().offloaded_bytes, numeric_bytes);
    assert!(w1s.grad().is_some());
}

// ---------------------------------------------------------------------
// SSD target integration (real files)
// ---------------------------------------------------------------------

#[test]
fn ssd_target_round_trips_through_real_files() {
    let dir = std::env::temp_dir().join(format!("ssdtrain-cache-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = SimClock::new();
    let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 40));
    let dev = Device::cpu();
    dev.set_tracker(mem.clone());
    let io = IoEngine::new(clock.clone(), 1e6, 1e6);
    let target = Arc::new(SsdTarget::new(&dir, WearMeter::new(1e15, 1.0)).unwrap());
    let cache = TensorCache::new(offload_all_config(), target.clone(), io, mem.clone());
    let graph = Graph::new(&dev, 7);
    cache.install(&graph);
    graph.set_observer(Arc::new(FixedOpTime {
        clock: clock.clone(),
        secs_per_op: 1.0,
    }));

    let (w1t, w2t, xt) = init_weights(&dev, 43);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);
    let r = Rig {
        dev,
        graph,
        cache,
        mem,
        clock,
    };
    let loss = run_step(&r, &xt, &w1, &w2);
    assert!(loss.is_finite());
    let t: &Arc<SsdTarget> = &target;
    assert!(t.bytes_written() > 0, "wear metered");
    assert!(w1.grad().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Scheduler stage hints (Algorithm 1)
// ---------------------------------------------------------------------

#[test]
fn stage_scopes_drive_microbatch_switch_and_prefetch() {
    use ssdtrain::{StageHint, TraceCategory, TraceSink};

    let r = rig(offload_all_config(), 1e9, 1e9, 0.001);
    let sink = TraceSink::enabled();
    r.cache.set_trace(sink.clone());
    let (w1t, w2t, xt) = init_weights(&r.dev, 51);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);

    r.cache.begin_step();
    r.graph.set_phase(Phase::Forward);
    r.cache.register_parameter(&w1.tensor());
    r.cache.register_parameter(&w2.tensor());

    // Entering a micro-batch-load scope switches the record set
    // (Algorithm 1 line 9).
    drop(r.cache.stage_scope(StageHint::MicroBatchLoad(3)));
    r.graph.set_micro_batch(3);

    let fwd = r.cache.stage_scope(StageHint::Forward);
    let loss = two_layer_forward(&r.graph, &xt, &w1, &w2);

    // Advance past every store's completion so prefetches issue reads.
    r.clock.advance_by(10.0);

    // Lines 10-13: announcing an upcoming backward pass prefetches.
    let before = r.cache.stats().prefetches;
    fwd.announce_next(StageHint::Backward);
    assert!(
        r.cache.stats().prefetches > before,
        "announce_next(Backward) must prefetch the tail module"
    );
    drop(fwd);

    {
        let _bwd = r.cache.stage_scope(StageHint::Backward);
        r.graph.backward(&loss);
        // Line 15 runs on drop: waiting after a backward stage is a
        // no-op here (all loads consumed) but must not panic or stall.
    }

    // Every completed scope left a stage span on the trace.
    let stages: Vec<String> = sink
        .events()
        .iter()
        .filter(|e| e.cat == TraceCategory::Stage)
        .map(|e| e.name.clone())
        .collect();
    assert_eq!(
        stages,
        vec!["stage.load_mb3", "stage.forward", "stage.backward"]
    );
}

#[test]
fn stage_scopes_cover_the_algorithm1_shim_semantics() {
    use ssdtrain::StageHint;

    let r = rig(offload_all_config(), 1e9, 1e9, 0.001);
    let (w1t, w2t, xt) = init_weights(&r.dev, 51);
    let w1 = Var::new("w1", w1t);
    let w2 = Var::new("w2", w2t);

    r.cache.begin_step();
    r.graph.set_phase(Phase::Forward);
    r.cache.register_parameter(&w1.tensor());
    r.cache.register_parameter(&w2.tensor());

    // Algorithm 1 line 9: a micro-batch load switches the record set on
    // scope entry.
    let loss = {
        let _load = r.cache.stage_scope(StageHint::MicroBatchLoad(3));
        r.graph.set_micro_batch(3);
        two_layer_forward(&r.graph, &xt, &w1, &w2)
    };

    // Advance past every store's completion so prefetches issue reads.
    r.clock.advance_by(10.0);

    // Lines 10-13: announcing an upcoming backward prefetches the tail.
    let forward = r.cache.stage_scope(StageHint::Forward);
    let before = r.cache.stats().prefetches;
    forward.announce_next(StageHint::Backward);
    assert!(
        r.cache.stats().prefetches > before,
        "announce_next(Backward) must prefetch the tail module"
    );
    // Dropping a non-backward scope never triggers the I/O wait.
    drop(forward);

    // Line 15: leaving a backward scope drains I/O — a no-op here (all
    // loads consumed) but it must not panic or stall.
    let backward = r.cache.stage_scope(StageHint::Backward);
    r.graph.backward(&loss);
    let t = r.clock.now();
    drop(backward);
    assert_eq!(r.clock.now().as_secs(), t.as_secs());

    // Optimizer announcements are accepted and do nothing.
    let opt = r.cache.stage_scope(StageHint::Forward);
    opt.announce_next(StageHint::Optimizer);
}
