//! Property-based fuzzing of the tensor-cache state machine: random
//! interleavings of pack / unpack / prefetch / scope-release / clock
//! advances must never corrupt data, leak records, or break memory
//! conservation.

use proptest::prelude::*;
use ssdtrain::{CpuTarget, IoEngine, TensorCache, TensorCacheConfig};
use ssdtrain_autograd::{ModuleHooks, Packed, Phase, SavedTensorHooks, ScopeInfo};
use ssdtrain_simhw::{GpuMemory, SimClock};
use ssdtrain_tensor::{Device, MemClass, Tensor};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    /// Pack a fresh tensor of `len` elements under the current scope.
    Pack { len: usize },
    /// Re-pack an earlier tensor (dedup path), by index into the packed
    /// list.
    Repack { which: usize },
    /// Unpack one of the packed values.
    Unpack { which: usize },
    /// Advance the simulated clock.
    Advance { millis: u32 },
    /// Close the current scope in "backward" and open the next one.
    NextScope,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1usize..512).prop_map(|len| Action::Pack { len }),
        (0usize..64).prop_map(|which| Action::Repack { which }),
        (0usize..64).prop_map(|which| Action::Unpack { which }),
        (0u32..2000).prop_map(|millis| Action::Advance { millis }),
        Just(Action::NextScope),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_interleavings_preserve_data_and_memory(
        actions in prop::collection::vec(action_strategy(), 1..60),
        write_kbps in 1u64..1_000_000,
    ) {
        let clock = SimClock::new();
        let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 40));
        let dev = Device::cpu();
        dev.set_tracker(mem.clone());
        let io = IoEngine::new(clock.clone(), write_kbps as f64 * 1e3, 1e6);
        let cache = TensorCache::new(
            TensorCacheConfig {
                min_offload_numel: 0,
                adaptive: false,
                ..TensorCacheConfig::default()
            },
            Arc::new(CpuTarget::new(1 << 40)),
            io,
            mem.clone(),
        );
        cache.begin_step();

        // Drive the module hooks directly (a synthetic forward pass).
        let mut scope_seq = 1u64;
        let open_scope = |cache: &TensorCache, seq: u64| {
            cache.forward_pre(&ScopeInfo {
                path: format!("m{seq}"),
                seq,
                micro_batch: 0,
            });
        };
        open_scope(&cache, scope_seq);

        // (packed value, expected bytes, scope it belongs to). Handles
        // die when their scope's backward completes — unpacking them
        // afterwards would be an engine bug, so the driver only unpacks
        // live ones, mirroring real tape behaviour.
        let mut packed: Vec<(Packed, Vec<f32>, u64)> = Vec::new();
        let mut tensors: Vec<Tensor> = Vec::new(); // keep-alive originals

        for action in &actions {
            match action {
                Action::Pack { len } => {
                    let data: Vec<f32> =
                        (0..*len).map(|i| (i as f32) * 0.5 + packed.len() as f32).collect();
                    let t = Tensor::from_vec(data.clone(), [*len], &dev);
                    let p = cache.pack(&t);
                    packed.push((p, data, scope_seq));
                    tensors.push(t);
                }
                Action::Repack { which } => {
                    if !tensors.is_empty() {
                        let t = tensors[which % tensors.len()].clone();
                        let expect = t.to_vec_or_reload(&cache);
                        let p = cache.pack(&t);
                        packed.push((p, expect, scope_seq));
                    }
                }
                Action::Unpack { which } => {
                    let live: Vec<&(Packed, Vec<f32>, u64)> =
                        packed.iter().filter(|e| e.2 >= scope_seq).collect();
                    if !live.is_empty() {
                        let (p, expect, _) = live[which % live.len()];
                        let back = cache.unpack(p);
                        prop_assert_eq!(&back.to_vec(), expect, "unpack data");
                    }
                }
                Action::Advance { millis } => {
                    clock.advance_by(*millis as f64 / 1000.0);
                }
                Action::NextScope => {
                    // Close forward scope, then treat it as done in
                    // backward (release its records), then open a new one.
                    let info = ScopeInfo {
                        path: format!("m{scope_seq}"),
                        seq: scope_seq,
                        micro_batch: 0,
                    };
                    cache.forward_post(&info);
                    cache.backward_post(&info);
                    scope_seq += 1;
                    open_scope(&cache, scope_seq);
                }
            }
        }

        // Whatever happened, every still-live value must resolve to its
        // original bytes.
        for (p, expect, scope) in &packed {
            if *scope >= scope_seq {
                let back = cache.unpack(p);
                prop_assert_eq!(&back.to_vec(), expect, "final unpack");
            }
        }
        // Flush and drop everything: no activation bytes may linger.
        cache.flush();
        drop(packed);
        drop(tensors);
        prop_assert_eq!(mem.resident(MemClass::Activation), 0);
        // Stall accounting can only be non-negative.
        prop_assert!(cache.stats().stall_secs >= 0.0);
    }
}

/// Test helper: read a tensor's bytes even if the cache currently has its
/// storage offloaded (peek through the cache by unpacking is not possible
/// without the packed handle, so reconstruct from the original values
/// when resident, else defer to the recorded expectation).
trait ToVecOrReload {
    fn to_vec_or_reload(&self, cache: &TensorCache) -> Vec<f32>;
}

impl ToVecOrReload for Tensor {
    fn to_vec_or_reload(&self, _cache: &TensorCache) -> Vec<f32> {
        // Packing keeps data resident until a store commits, and commits
        // only release when the cache holds the last reference — which it
        // never does here because this suite keeps originals alive.
        self.to_vec()
    }
}

#[test]
fn phase_changes_are_idempotent() {
    let clock = SimClock::new();
    let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 30));
    let io = IoEngine::new(clock.clone(), 1e9, 1e9);
    let cache = TensorCache::new(
        TensorCacheConfig::default(),
        Arc::new(CpuTarget::new(1 << 30)),
        io,
        mem,
    );
    for _ in 0..3 {
        cache.phase_changed(Phase::Forward);
        cache.phase_changed(Phase::Backward);
        cache.phase_changed(Phase::Recompute);
    }
    cache.flush();
}
