//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal implementations of its third-party
//! dependencies. This shim keeps the *property-testing semantics* —
//! each `proptest!` test runs many cases over pseudo-random inputs
//! drawn from composable strategies — with two simplifications:
//!
//! * **Deterministic seeding.** Cases derive from a hash of the test
//!   name and case index (overridable via `PROPTEST_SHIM_SEED`), so
//!   every run explores the same inputs. Failures are therefore
//!   reproducible without persistence files; `*.proptest-regressions`
//!   files are ignored.
//! * **No shrinking.** A failing case reports its case index and
//!   message; inputs can be regenerated from the seed.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(..)]`), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!`, `prop_oneof!`, `Just`, `any::<T>()`, numeric
//! range strategies, tuple strategies, `.prop_map`, and
//! `prop::collection::vec`.

#[allow(unused_imports)]
use std::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic xorshift64* RNG used by the shim's strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a test identifier and a case index.
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let seed = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ env;
        TestRng(if seed == 0 { 0xdead_beef } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<V, S: Strategy<Value = V> + ?Sized> Strategy for &S {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (built by `prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds a choice over `arms`; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`super::arbitrary::any`].
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        /// Creates the strategy.
        pub fn new() -> AnyStrategy<T> {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }
}

/// `proptest::arbitrary` — home of [`any`].
pub mod arbitrary {
    use super::strategy::{AnyStrategy, Arbitrary};

    /// Strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::new()
    }
}

/// `proptest::prop` — collection strategies and friends.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use std::ops::Range;

        /// Element-count specification: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy generating `Vec`s of another strategy's values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy over `element` with `size` entries.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span) as usize
                    };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    pub use crate::TestRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // The real crate defaults to 256; the shim trims to keep the
            // heavier simulation properties fast in CI.
            Config { cases: 64 }
        }
    }
}

/// The prelude `use proptest::prelude::*;` pulls in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests: each `fn` runs `config.cases` times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases as u64 {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n\
                             (inputs regenerate deterministically; \
                             set PROPTEST_SHIM_SEED to vary)",
                            __case, config.cases, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Rejects a generated case inside a `proptest!` body. The shim skips
/// the case (counts it as passed) rather than resampling, which keeps
/// runs deterministic; use sparingly so coverage stays meaningful.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            let _ = format!($($fmt)+);
            return ::std::result::Result::Ok(());
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a), stringify!($b), a, b, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a), stringify!($b), a, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), a, format!($($fmt)+), file!(), line!()
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ::std::boxed::Box::new($s)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let gen = |case| {
            let mut rng = crate::TestRng::deterministic("det", case);
            Strategy::generate(&prop::collection::vec(0u32..100, 1..20), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(
            xs in prop::collection::vec(1u32..50, 1..10),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (1..50).contains(x)), "flag {flag}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_map_compose(choice in prop_oneof![
            (1u32..10).prop_map(|v| v * 2),
            Just(99u32),
        ]) {
            prop_assert!(choice == 99u32 || (choice % 2u32 == 0u32 && choice < 20u32));
        }
    }
}
