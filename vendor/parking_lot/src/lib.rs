//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal implementations of its third-party
//! dependencies. This crate wraps `std::sync` primitives behind
//! `parking_lot`'s panic-free (non-poisoning) interface: `lock()` /
//! `read()` / `write()` return guards directly, and a poisoned inner
//! lock (a thread panicked while holding it) is transparently recovered
//! rather than propagated, matching `parking_lot`'s semantics of not
//! tracking poisoning at all.

use std::fmt;
use std::sync::PoisonError;

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a
    /// poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
