//! Offline shim for `serde_derive`: the derives emit *empty* impls of
//! the marker traits in the sibling `serde` shim. Generic parameters
//! (including lifetimes and defaulted type params) are carried through
//! textually; attribute knobs (`#[serde(...)]`) are accepted and
//! ignored, which is sound because the traits have no methods.

use proc_macro::{TokenStream, TokenTree};

/// The parsed target of a derive: name plus raw/param-only generics.
struct Target {
    name: String,
    /// Raw generic parameter list (bounds kept, defaults stripped),
    /// e.g. `T: Clone, 'a`.
    params: String,
    /// Parameter names only, e.g. `T, 'a`, for the type path.
    args: String,
}

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    // Find `struct` / `enum` / `union`; the next ident is the name.
    let mut idx = None;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Ident(id) = t {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                idx = Some(i);
                break;
            }
        }
    }
    let kw = idx.expect("derive input has no struct/enum/union keyword");
    let name = match tokens.get(kw + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after keyword, got {other:?}"),
    };

    // Optional generics: `<` ... matching `>` right after the name.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(kw + 2) {
        if p.as_char() == '<' {
            let mut depth = 1usize;
            let mut segs: Vec<Vec<String>> = vec![Vec::new()];
            for t in &tokens[kw + 3..] {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        segs.last_mut().unwrap().push("<".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        segs.last_mut().unwrap().push(">".into());
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        segs.push(Vec::new());
                    }
                    other => segs.last_mut().unwrap().push(other.to_string()),
                }
            }
            let mut param_list = Vec::new();
            let mut arg_list = Vec::new();
            for seg in segs.iter().filter(|s| !s.is_empty()) {
                // Strip a trailing `= default` (top level only — `=`
                // inside nested angle brackets is an associated-type
                // binding, not a default).
                let mut depth = 0i32;
                let mut cut = seg.len();
                for (i, tok) in seg.iter().enumerate() {
                    match tok.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        "=" if depth == 0 => {
                            cut = i;
                            break;
                        }
                        _ => {}
                    }
                }
                // Lifetimes tokenise as `'` + ident; re-join them.
                param_list.push(seg[..cut].join(" ").replace("' ", "'"));
                // The parameter name: `'a` for lifetimes (quote + ident),
                // `const N` for const params, otherwise the first ident.
                let arg = if seg[0] == "'" {
                    format!("'{}", seg[1])
                } else if seg[0] == "const" {
                    seg[1].clone()
                } else {
                    seg[0].clone()
                };
                arg_list.push(arg);
            }
            params = param_list.join(", ");
            args = arg_list.join(", ");
        }
    }
    Target { name, params, args }
}

fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let t = parse_target(input);
    let ty = if t.args.is_empty() {
        t.name.clone()
    } else {
        format!("{}<{}>", t.name, t.args)
    };
    let code = if deserialize {
        let generics = if t.params.is_empty() {
            "'de".to_string()
        } else {
            format!("'de, {}", t.params)
        };
        format!("impl<{generics}> ::serde::Deserialize<'de> for {ty} {{}}")
    } else if t.params.is_empty() {
        format!("impl ::serde::Serialize for {ty} {{}}")
    } else {
        format!("impl<{}> ::serde::Serialize for {ty} {{}}", t.params)
    };
    code.parse().expect("generated impl parses")
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}
