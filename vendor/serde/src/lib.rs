//! Offline shim for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal implementations of its third-party
//! dependencies. This workspace only *derives* `Serialize` /
//! `Deserialize` (no code serialises anything yet — no `serde_json` or
//! similar is in the tree), so the traits here are empty markers and the
//! derives (from the sibling `serde_derive` shim) emit empty marker
//! impls. If a future change starts serialising for real, replace this
//! shim with a vendored copy of the actual crates.

/// Marker for types declared serialisable.
pub trait Serialize {}

/// Marker for types declared deserialisable.
pub trait Deserialize<'de>: Sized {}

/// Marker for seeds (named for API compatibility; unused).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
