//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors minimal implementations of its third-party
//! dependencies. This shim runs each benchmark closure in a short
//! calibrated timing loop and prints a mean per-iteration time — enough
//! to keep `cargo bench` (and `--test` mode under `cargo test`)
//! compiling and producing useful relative numbers, without the real
//! crate's statistics machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Criterion in test mode: each benchmark runs one iteration.
    pub fn test_mode() -> Criterion {
        Criterion { test_mode: true }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: if self.test_mode { 1 } else { 0 },
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.iters > 0 && !self.test_mode {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "bench {name:<40} {per_iter:>12.1} ns/iter ({} iters)",
                b.iters
            );
        } else {
            println!("bench {name:<40} ok (test mode)");
        }
        self
    }
}

/// Timing loop driver passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `body`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        if self.iters == 1 {
            // Test mode: a single sanity iteration.
            black_box(body());
            return;
        }
        // Calibrate: grow the iteration count until the loop runs long
        // enough to time, capped to keep full suites quick.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(body());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(20) || n >= 1 << 20 {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            n *= 8;
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = if ::std::env::args().any(|a| a == "--test") {
                $crate::Criterion::test_mode()
            } else {
                $crate::Criterion::default()
            };
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_loop() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("shim/self", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }
}
