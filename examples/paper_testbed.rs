//! Reproduces one cell of the paper's evaluation on the Table 3 testbed:
//! BERT with hidden 8192 and 4 layers, batch 16, tensor-parallel over
//! the two A100s, activations streaming to the 4×P5800X RAID0 array.
//!
//! Prints the step metrics the paper's Figures 7 and 10 are built from.
//!
//! ```sh
//! cargo run --release --example paper_testbed
//! ```

use ssdtrain::PlacementStrategy;
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{SessionConfig, TrainSession};

fn main() -> std::io::Result<()> {
    let system = SystemConfig::dac_testbed();
    println!("machine : {}", system.name);
    println!(
        "offload : write {:.1} GB/s, read {:.1} GB/s (min of PCIe and the SSD array)",
        system.offload_write_bps() / 1e9,
        system.offload_read_bps() / 1e9
    );

    let model = ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2);
    println!(
        "model   : {} ({} heads, seq {}, TP {})\n",
        model.tag(),
        model.heads,
        model.seq,
        model.tp
    );

    let run = |strategy: PlacementStrategy| -> std::io::Result<()> {
        let cfg = SessionConfig::builder()
            .system(system.clone())
            .model(model.clone())
            .batch_size(16)
            .strategy(strategy)
            .symbolic(true) // paper scale: shape-accurate, simulator-timed
            .seed(42)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg)?;
        if strategy == PlacementStrategy::Offload {
            let (profile, plan) = s.profile_step().expect("profile step");
            println!(
                "[offload] profiling step: forward {:.3}s, {} modules, {:.2} GB offloadable",
                profile.fwd_total_secs,
                profile.modules.len(),
                profile.fwd_io_bytes as f64 / 1e9
            );
            println!(
                "[offload] adaptive plan keeps {:?} in GPU memory",
                plan.keep_paths
            );
        }
        let m = s.run_step().expect("step");
        println!(
            "{:>9}: step {:.3}s | fwd {:.3}s | act peak {:5.2} GiB | at bwd start {:5.2} GiB | stall {:.4}s",
            strategy.to_string(),
            m.step_secs,
            m.fwd_secs,
            m.act_peak_bytes as f64 / (1u64 << 30) as f64,
            m.act_at_bwd_start as f64 / (1u64 << 30) as f64,
            m.offload.stall_secs,
        );
        Ok(())
    };

    run(PlacementStrategy::Keep)?;
    run(PlacementStrategy::Offload)?;
    run(PlacementStrategy::Recompute)?;

    println!(
        "\nthe offload run matches keep's step time (I/O fully overlapped) at a fraction\n\
         of the activation peak — the paper's Q1/Q2 answers."
    );
    Ok(())
}
