//! Functional pipeline-parallel training: split a GPT across simulated
//! GPUs, run the 1F1B schedule with real tensors crossing the stage
//! boundaries, and verify the losses are bit-identical to single-GPU
//! training — with and without per-stage activation offloading
//! (Section 4.4's pipeline discussion, executed rather than modelled).
//!
//! ```sh
//! cargo run --release --example pipeline_training
//! ```

use ssdtrain_models::ModelConfig;
use ssdtrain_train::{PipelineExec, PipelineExecConfig};

fn config(pp: usize, micro_batches: usize, offload: bool) -> PipelineExecConfig {
    PipelineExecConfig {
        model: ModelConfig::tiny_gpt(),
        pp,
        micro_batches,
        micro_batch_size: 2,
        offload,
        send_secs: 0.001,
        seed: 2026,
    }
}

fn main() {
    let mut single = PipelineExec::new(config(1, 4, false)).expect("valid config");
    let mut piped = PipelineExec::new(config(2, 4, false)).expect("valid config");
    let mut piped_off = PipelineExec::new(config(2, 4, true)).expect("valid config");

    println!("step | single GPU | 2-stage pipe | 2-stage + offload | identical");
    for step in 0..4 {
        let a = single.run_step().expect("step");
        let b = piped.run_step().expect("step");
        let c = piped_off.run_step().expect("step");
        let same = a.loss == b.loss && b.loss == c.loss;
        println!(
            "{step:>4} | {:>10.6} | {:>12.6} | {:>17.6} | {}",
            a.loss,
            b.loss,
            c.loss,
            if same { "yes" } else { "NO" }
        );
        assert!(same, "pipelining/offloading must not change numerics");
    }

    println!("\nbubble amortisation (2 stages, functional 1F1B):");
    println!("micro-b | step s | s per micro-batch");
    for m in [1usize, 2, 4, 8] {
        let mut t = PipelineExec::new(config(2, m, false)).expect("valid config");
        let r = t.run_step().expect("step");
        println!(
            "{m:>7} | {:>6.4} | {:>7.5}",
            r.step_secs,
            r.step_secs / m as f64
        );
    }
    println!(
        "\nmore in-flight micro-batches amortise the pipeline bubble — the memory\n\
         activation offloading frees is exactly what buys them (paper Section 4.4)."
    );
}
