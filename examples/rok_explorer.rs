//! ROK explorer: the design-choice workflow the paper's Section 4.3
//! motivates. Given a model and a per-GPU activation memory budget, sweep
//! batch sizes under all three placement strategies and report which
//! (strategy, batch) points fit the budget and which maximises
//! throughput.
//!
//! ```sh
//! cargo run --release --example rok_explorer
//! ```

use ssdtrain::PlacementStrategy;
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_train::{SessionConfig, TrainSession};

const BUDGET_GIB: f64 = 8.0;

fn main() -> std::io::Result<()> {
    let hidden = 12288;
    let layers = 3;
    println!(
        "BERT H{hidden} L{layers} on the Table 3 testbed — activation budget {BUDGET_GIB} GiB/GPU\n"
    );
    println!(
        "{:>9} {:>4} {:>14} {:>10} {:>8}  fits?",
        "strategy", "B", "act peak GiB", "TFLOP/s", "step s"
    );

    let mut best: Option<(String, usize, f64)> = None;
    for strategy in [
        PlacementStrategy::Keep,
        PlacementStrategy::Offload,
        PlacementStrategy::Recompute,
        PlacementStrategy::Hybrid {
            recompute_layers: 1,
        },
    ] {
        for batch in [4usize, 8, 16, 32] {
            let cfg = SessionConfig::builder()
                .model(ModelConfig::paper_scale(Arch::Bert, hidden, layers).with_tp(2))
                .batch_size(batch)
                .strategy(strategy)
                .symbolic(true)
                .seed(1)
                .build()
                .expect("valid config");
            let mut s = TrainSession::new(cfg)?;
            if strategy.uses_cache() {
                let _ = s.profile_step().expect("profile step");
            }
            let m = s.run_step().expect("step");
            let peak_gib = m.act_peak_bytes as f64 / (1u64 << 30) as f64;
            let fits = peak_gib <= BUDGET_GIB && !m.oom;
            println!(
                "{:>9} {:>4} {:>14.2} {:>10.1} {:>8.3}  {}",
                strategy.to_string(),
                batch,
                peak_gib,
                m.model_tflops(),
                m.step_secs,
                if fits { "yes" } else { "-" }
            );
            if fits {
                let better = best
                    .as_ref()
                    .map(|(_, _, t)| m.model_tflops() > *t)
                    .unwrap_or(true);
                if better {
                    best = Some((strategy.to_string(), batch, m.model_tflops()));
                }
            }
        }
    }

    if let Some((strategy, batch, tflops)) = best {
        println!(
            "\nbest point within the budget: {strategy} at batch {batch} ({tflops:.1} TFLOP/s)"
        );
        println!(
            "offloading typically wins: it keeps the keep-strategy throughput while its\n\
             peak fits batches that keep cannot (the paper's double-the-batch observation)."
        );
    }
    Ok(())
}
