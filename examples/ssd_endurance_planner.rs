//! SSD endurance planner: the deployment workflow behind the paper's
//! Sections 3.4 and 4.4. For a chosen large-system configuration, compare
//! catalogue drives as activation-offload targets: projected lifespan,
//! dollars per GPU, and the effect of relaxing the data-retention period.
//!
//! ```sh
//! cargo run --release --example ssd_endurance_planner
//! ```

use ssdtrain_analysis::endurance::{figure9_configs, LifespanProjection};
use ssdtrain_simhw::catalog::ssds;
use ssdtrain_simhw::ssd::retention_relaxation_factor;
use ssdtrain_simhw::Raid0;

fn main() {
    // Plan for the 530B Megatron configuration.
    let cfg = figure9_configs()
        .into_iter()
        .find(|c| c.framework == "Megatron" && (c.params_b - 529.6).abs() < 1.0)
        .expect("530B config in the catalog");
    println!(
        "planning offload storage for: {} {}B on {} GPUs (TP {} × PP {})\n",
        cfg.framework, cfg.params_b, cfg.gpus, cfg.tp, cfg.pp
    );

    let drives = [
        ssds::kioxia_fl6(),
        ssds::solidigm_p5620(),
        ssds::solidigm_p5810(),
        ssds::optane_p5800x(),
        ssds::solidigm_p5810_12t8(),
    ];

    println!(
        "{:<42} {:>6} {:>10} {:>10} {:>12}",
        "drive (x4 per GPU, RAID0)", "GB/s", "life (yr)", "$/GPU", "life@3d (yr)"
    );
    for drive in drives {
        let price = drive.price_usd * 4.0;
        let proj = LifespanProjection {
            array: Raid0::new(drive.clone(), 4),
            workload_waf: 1.0,
        };
        let row = proj.project(&cfg);
        let relaxed = row.lifespan_years * retention_relaxation_factor(3.0 * 365.25, 3.0);
        let ok = row.lifespan_years >= 3.0;
        println!(
            "{:<42} {:>6.1} {:>10.1} {:>10.0} {:>12.0}  {}",
            drive.name,
            proj.array.write_bps() / 1e9,
            row.lifespan_years,
            price,
            relaxed,
            if ok { "" } else { "<- wears out early" }
        );
    }

    let proj = LifespanProjection::default();
    let row = proj.project(&cfg);
    println!(
        "\nthis configuration writes {:.0} GB of activations per GPU per {:.0}s step\n\
         and needs {:.1} GB/s of PCIe write bandwidth — well under a Gen4 x16 link.\n\
         Relaxing data retention (3 years → 3 days) multiplies endurance ~50x, making\n\
         even mainstream TLC drives viable (paper Section 4.4).",
        row.act_bytes_per_gpu as f64 / 1e9,
        row.step_secs,
        row.pcie_write_bps / 1e9,
    );
}
