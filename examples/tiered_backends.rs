//! Tiered offload backends: place activations on a bounded host-DRAM
//! front tier that spills into the SSD array, and verify the choice of
//! backend is invisible to the numerics.
//!
//! ```sh
//! cargo run --example tiered_backends
//! ```
//!
//! The session builder exposes three backends:
//!
//! * [`OffloadBackend::Ssd`] — the paper's design: everything to the
//!   RAID0 array over GPUDirect Storage.
//! * [`OffloadBackend::Dram`] — the classic host-memory offloader
//!   (bounded by host capacity, Figure 2's argument).
//! * [`OffloadBackend::Tiered`] — a pinned DRAM pool of the given size
//!   in front of the array; tensors that do not fit spill to flash.

use ssdtrain::TensorCacheConfig;
use ssdtrain_models::ModelConfig;
use ssdtrain_train::{OffloadBackend, SessionConfig, TrainSession};

fn run(backend: OffloadBackend) -> (Vec<f32>, ssdtrain::OffloadStats) {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        // Offload even tiny tensors so the toy model exercises the
        // whole path (real runs keep the paper's 2^20-element floor).
        .cache(TensorCacheConfig::offload_everything())
        .seed(7)
        .backend(backend)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let losses = (0..3).map(|_| s.run_step().expect("step").loss).collect();
    let stats = s.cache().expect("offload session has a cache").stats();
    (losses, stats)
}

fn main() {
    // An 8 KiB front tier is deliberately too small for a whole step:
    // the overflow spills to the (simulated) SSD tier mid-step.
    let backends = [
        ("ssd", OffloadBackend::Ssd),
        ("dram", OffloadBackend::Dram),
        (
            "tiered-8k",
            OffloadBackend::Tiered {
                dram_bytes: 8 << 10,
            },
        ),
    ];

    let mut reference: Option<Vec<f32>> = None;
    for (label, backend) in backends {
        let (losses, stats) = run(backend);
        println!("{label}:");
        println!("  losses          : {losses:?}");
        for (i, tier) in stats.tiers.iter().enumerate() {
            println!(
                "  tier{i} ({:<4})    : wrote {:>6} B, read {:>6} B, spilled-in {:>6} B",
                tier.name, tier.bytes_written, tier.bytes_read, tier.spilled_in_bytes
            );
        }
        match &reference {
            None => reference = Some(losses),
            Some(expect) => {
                assert_eq!(
                    &losses, expect,
                    "the backend is a performance knob, not a numerics knob"
                );
                println!("  numerics        : bit-identical to ssd-only");
            }
        }
        println!();
    }
    println!(
        "every backend produced the same losses; only the per-tier traffic split\n\
         changed. See `cargo run -p ssdtrain-bench --release --bin bench_tiering`\n\
         for the paper-scale endurance comparison."
    );
}
