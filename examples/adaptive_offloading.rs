//! Walks the adaptive-offloading machinery (paper Section 3.3.3,
//! Figure 8) by hand: profile a step, inspect the per-module tree the
//! planner sees, and watch the cutoff move as the SSD array shrinks.
//!
//! ```sh
//! cargo run --release --example adaptive_offloading
//! ```

use ssdtrain::adaptive::AdaptivePlan;
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{SessionConfig, TrainSession};

fn main() -> std::io::Result<()> {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
        .batch_size(16)
        .symbolic(true)
        .seed(8)
        .build()
        .expect("valid config");
    let mut session = TrainSession::new(cfg)?;

    // One profiling step collects the Figure 8 annotations.
    let (profile, plan) = session.profile_step().expect("profile step");
    println!(
        "profiled forward: {:.3}s total, {:.2} GB offloadable, write channel busy {:.3}s\n",
        profile.fwd_total_secs,
        profile.fwd_io_bytes as f64 / 1e9,
        profile.fwd_io_secs
    );
    println!("module tree (forward order):");
    for m in &profile.modules {
        println!(
            "  {:<16} {:>7.2} GB  {:>7.1} ms",
            m.path,
            m.offload_bytes as f64 / 1e9,
            m.fwd_secs * 1e3
        );
    }

    println!("\nrequired bandwidth if module m were the last to offload:");
    for (m, bw) in plan.required_bps.iter().enumerate() {
        let marker = match plan.last_offloaded {
            Some(k) if m == k => "  <- chosen cutoff",
            Some(k) if m > k => "  (kept in GPU memory)",
            _ => "",
        };
        println!(
            "  m={m:<2} {:<16} {:>6.1} GB/s{marker}",
            profile.modules[m].path,
            bw / 1e9
        );
    }
    println!(
        "\navailable write bandwidth: {:.1} GB/s (4x P5800X RAID0)",
        SystemConfig::dac_testbed().offload_write_bps() / 1e9
    );

    // Re-plan for shrinking arrays: the cutoff retreats, keeping more of
    // the tail resident — exactly Figure 8's "pause offloading here".
    println!("\ncutoff vs array size:");
    for drives in [4usize, 2, 1] {
        let mut sys = SystemConfig::dac_testbed();
        sys.ssd_array.n = drives;
        let plan = AdaptivePlan::decide(&profile, sys.offload_write_bps(), 2.0);
        let kept: Vec<&str> = profile
            .modules
            .iter()
            .map(|m| m.path.as_str())
            .filter(|p| plan.keeps(p))
            .collect();
        println!(
            "  {drives} drive(s) ({:>5.1} GB/s): keep {:?}",
            sys.offload_write_bps() / 1e9,
            kept
        );
    }
    Ok(())
}
