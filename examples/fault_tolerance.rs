//! Walks the fault-injection harness and the offload path's graceful
//! degradation: the same short training run is repeated against an SSD
//! target that starts refusing writes mid-step, once per recovery
//! policy, and the losses are compared bit-for-bit with the healthy run.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use ssdtrain::{RecoveryPolicy, TensorCacheConfig};
use ssdtrain_models::ModelConfig;
use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
use ssdtrain_train::{SessionConfig, TrainSession};

const STEPS: usize = 3;

fn session(fault: Option<FaultPlan>, recovery: RecoveryPolicy) -> TrainSession {
    let mut builder = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .recovery(recovery)
        .seed(7);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    let cfg = builder.build().expect("valid config");
    TrainSession::new(cfg).expect("session construction")
}

/// A deterministic plan: the SSD refuses every write once 64 KiB have
/// been offloaded (think: a pinned pool or namespace filling up).
fn failing_ssd() -> FaultPlan {
    FaultPlan::new(42).with_recurring_fault(
        FaultTrigger::ByteThreshold { bytes: 64 << 10 },
        FaultKind::WriteError,
    )
}

fn main() {
    // 1. The healthy anchor run.
    let mut healthy = session(None, RecoveryPolicy::KeepResident);
    let base: Vec<f32> = (0..STEPS)
        .map(|_| healthy.run_step().expect("healthy device").loss)
        .collect();
    println!("healthy losses:        {base:?}");

    // 2. keep-resident: failed stores stay in GPU memory; training
    //    continues, numerics unchanged, counters report the damage.
    let mut s = session(Some(failing_ssd()), RecoveryPolicy::KeepResident);
    let mut losses = Vec::new();
    let mut failures = 0;
    let mut kept = 0;
    for _ in 0..STEPS {
        let m = s.run_step().expect("keep-resident absorbs write faults");
        failures += m.offload.store_failures;
        kept += m.offload.kept_resident_bytes;
        losses.push(m.loss);
    }
    println!("keep-resident losses:  {losses:?}");
    assert_eq!(base, losses, "recovery must not change numerics");
    println!(
        "  -> {failures} failed stores, {kept} bytes kept resident, fault log: {:?}",
        s.fault_log().expect("plan attached")
    );

    // 3. fallback-target: failed stores re-route to the host pinned
    //    pool; the GPU copy is still released, memory relief survives.
    let mut s = session(Some(failing_ssd()), RecoveryPolicy::FallbackTarget);
    let mut losses = Vec::new();
    let mut rerouted = 0;
    for _ in 0..STEPS {
        let m = s.run_step().expect("fallback absorbs write faults");
        rerouted += m.offload.fallback_bytes;
        losses.push(m.loss);
    }
    println!("fallback losses:       {losses:?}");
    assert_eq!(base, losses, "recovery must not change numerics");
    println!("  -> {rerouted} bytes re-routed to the host pool");

    // 4. fail-step: the step finishes its numerics, skips the optimizer
    //    update, and surfaces a structured error instead of panicking.
    let mut s = session(Some(failing_ssd()), RecoveryPolicy::FailStep);
    for step in 0..STEPS {
        match s.run_step() {
            Ok(m) => println!("fail-step: step {step} healthy (loss {})", m.loss),
            Err(err) => {
                let m = err.metrics.as_ref().expect("degraded metrics attached");
                println!(
                    "fail-step: step {step} surfaced `{err}`\n\
                     \x20 -> {} failed stores, optimizer update skipped, \
                     loss {} still finite",
                    m.offload.store_failures, m.loss
                );
                break;
            }
        }
    }
}
