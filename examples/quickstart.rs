//! Quickstart: train a small GPT numerically with SSDTrain activation
//! offloading and verify the losses are bit-identical to keeping
//! activations in GPU memory.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Pass `--trace <path>` to additionally run a traced two-step demo (with
//! a small injected write fault, absorbed bit-identically by the
//! keep-resident policy) and write its timeline as Chrome-trace JSON —
//! open it in `chrome://tracing` or <https://ui.perfetto.dev>:
//!
//! ```sh
//! cargo run --example quickstart -- --trace /tmp/step.json
//! ```

use ssdtrain::{
    chrome_trace_json, text_summary, OffloadClass, PlacementStrategy, RecoveryPolicy,
    TensorCacheConfig, TraceCategory, TraceSink,
};
use ssdtrain_models::ModelConfig;
use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
use ssdtrain_train::{SessionConfig, TrainSession};

fn session(strategy: PlacementStrategy) -> std::io::Result<TrainSession> {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .strategy(strategy)
        // Offload even tiny tensors so this toy model exercises the
        // whole path (real runs keep the paper's 2^20-element floor).
        .cache(TensorCacheConfig::offload_everything())
        .seed(7)
        .build()
        .expect("valid config");
    TrainSession::new(cfg)
}

/// Same run, but offloading every class — activations, gradients and
/// momentum — with the optimizer update overlapped into the next
/// step's forward. Still bit-identical: offload classes and the
/// overlap are performance knobs, not numerics knobs.
fn all_classes_session() -> std::io::Result<TrainSession> {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .offload(OffloadClass::Gradient, true)
        .offload(OffloadClass::OptimizerState, true)
        .overlap_optimizer(true)
        .momentum(0.9)
        .seed(7)
        .build()
        .expect("valid config");
    TrainSession::new(cfg)
}

fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

/// A traced two-step run: fixed seed, keep-resident recovery and one
/// injected write fault, so the timeline shows every lane — stores,
/// loads, prefetches, dedup hits, stage scopes, the fault and its
/// recovery — while the numerics stay bit-identical to a healthy run.
fn traced_demo(path: &std::path::Path) -> std::io::Result<()> {
    let sink = TraceSink::enabled();
    let mut cache = TensorCacheConfig::offload_everything();
    cache.recovery = RecoveryPolicy::KeepResident;
    let fault =
        FaultPlan::new(42).with_fault(FaultTrigger::NthOp { nth: 6 }, FaultKind::WriteError);
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(cache)
        .seed(7)
        .fault(fault)
        .trace(sink.clone())
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg)?;
    let per_step: Vec<_> = (0..2)
        .map(|_| {
            s.run_step()
                .expect("keep-resident absorbs the injected fault")
                .offload
        })
        .collect();

    // The trace must account for every byte the cache reported moving.
    let events = sink.events();
    for (i, stats) in per_step.iter().enumerate() {
        let step = (i + 1) as u32;
        let sum = |name: &str| -> u64 {
            events
                .iter()
                .filter(|e| e.step == step && e.name == name)
                .filter_map(|e| e.bytes())
                .sum()
        };
        let stored = sum("store.enqueue")
            - sum("store.cancel")
            - sum("recovery.keep_resident")
            - sum("recovery.fallback");
        assert_eq!(stored, stats.offloaded_bytes, "step {step} store bytes");
        assert_eq!(sum("load"), stats.reloaded_bytes, "step {step} load bytes");
    }
    let categories: std::collections::BTreeSet<&str> =
        events.iter().map(|e| e.cat.as_str()).collect();
    for required in [
        TraceCategory::Store,
        TraceCategory::Load,
        TraceCategory::Prefetch,
        TraceCategory::Dedup,
        TraceCategory::Stage,
        TraceCategory::Fault,
        TraceCategory::Recovery,
    ] {
        assert!(
            categories.contains(required.as_str()),
            "missing category {required:?} in {categories:?}"
        );
    }

    std::fs::write(path, chrome_trace_json(&events))?;
    println!("\n{}", text_summary(&events));
    println!(
        "traced {} events over {} categories; chrome trace written to {}",
        events.len(),
        categories.len(),
        path.display()
    );
    println!(
        "metrics registry after the run:\n{}",
        s.metrics_registry().render_text()
    );
    Ok(())
}

fn main() -> std::io::Result<()> {
    let mut keep = session(PlacementStrategy::Keep)?;
    let mut offload = session(PlacementStrategy::Offload)?;

    println!("step |   keep loss | offload loss | identical");
    for step in 0..5 {
        let mk = keep.run_step().expect("step");
        let mo = offload.run_step().expect("step");
        println!(
            "{step:>4} | {:>11.6} | {:>12.6} | {}",
            mk.loss,
            mo.loss,
            if mk.loss == mo.loss { "yes" } else { "NO" }
        );
        assert_eq!(mk.loss, mo.loss, "offloading must not change numerics");
    }

    let stats = offload
        .cache()
        .expect("offload session has a cache")
        .stats();
    println!("\nlast step went through the tensor cache:");
    println!("  stores submitted : {}", stats.store_jobs);
    println!("  bytes offloaded  : {}", stats.offloaded_bytes);
    println!("  bytes reloaded   : {}", stats.reloaded_bytes);
    println!("  dedup hits       : {}", stats.dedup_hits);
    println!("  forwarded        : {}", stats.forwarded);
    println!("  exposed stall    : {:.6}s", stats.stall_secs);
    println!("\nactivations round-tripped through real spill files, gradients unchanged.");

    // Now widen the offload to every class: gradients and momentum ride
    // the same cache, and the optimizer update hides under the next
    // step's forward. A plain in-memory momentum run is the reference.
    let inmem = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .strategy(PlacementStrategy::Keep)
        .momentum(0.9)
        .seed(7)
        .build()
        .expect("valid config");
    let mut inmem = TrainSession::new(inmem)?;
    let mut all = all_classes_session()?;
    println!("\nall-class offload (gradients + momentum, overlapped update):");
    for step in 0..5 {
        let mi = inmem.run_step().expect("step");
        let ma = all.run_step().expect("step");
        assert_eq!(
            mi.loss, ma.loss,
            "class offload and overlap must not change numerics"
        );
        println!(
            "{step:>4} | loss {:>11.6} | identical | opt exposed {:.6}s",
            ma.loss, ma.opt_exposed_secs
        );
    }
    let stats = all.cache().expect("cache").stats();
    for class in stats.classes.iter() {
        println!(
            "  class {:<15}: {:>8} B stored over {} jobs, {:>8} B reloaded",
            class.class, class.offloaded_bytes, class.stores, class.reloaded_bytes
        );
    }

    if let Some(path) = trace_path_from_args() {
        traced_demo(&path)?;
    }
    Ok(())
}
