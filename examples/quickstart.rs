//! Quickstart: train a small GPT numerically with SSDTrain activation
//! offloading and verify the losses are bit-identical to keeping
//! activations in GPU memory.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_models::ModelConfig;
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{SessionConfig, TargetKind, TrainSession};

fn session(strategy: PlacementStrategy) -> std::io::Result<TrainSession> {
    TrainSession::new(SessionConfig {
        system: SystemConfig::dac_testbed(),
        model: ModelConfig::tiny_gpt(),
        batch_size: 2,
        micro_batches: 1,
        strategy,
        // Offload even tiny tensors so this toy model exercises the
        // whole path (real runs keep the paper's 2^20-element floor).
        cache: TensorCacheConfig::offload_everything(),
        symbolic: false,
        seed: 7,
        target: TargetKind::Ssd,
        fault: None,
    })
}

fn main() -> std::io::Result<()> {
    let mut keep = session(PlacementStrategy::Keep)?;
    let mut offload = session(PlacementStrategy::Offload)?;

    println!("step |   keep loss | offload loss | identical");
    for step in 0..5 {
        let mk = keep.run_step().expect("step");
        let mo = offload.run_step().expect("step");
        println!(
            "{step:>4} | {:>11.6} | {:>12.6} | {}",
            mk.loss,
            mo.loss,
            if mk.loss == mo.loss { "yes" } else { "NO" }
        );
        assert_eq!(mk.loss, mo.loss, "offloading must not change numerics");
    }

    let stats = offload
        .cache()
        .expect("offload session has a cache")
        .stats();
    println!("\nlast step went through the tensor cache:");
    println!("  stores submitted : {}", stats.store_jobs);
    println!("  bytes offloaded  : {}", stats.offloaded_bytes);
    println!("  bytes reloaded   : {}", stats.reloaded_bytes);
    println!("  dedup hits       : {}", stats.dedup_hits);
    println!("  forwarded        : {}", stats.forwarded);
    println!("  exposed stall    : {:.6}s", stats.stall_secs);
    println!("\nactivations round-tripped through real spill files, gradients unchanged.");
    Ok(())
}
