#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation plus the
# ablation and upscaling studies. Tables are printed and mirrored to
# results/*.csv. Takes a few minutes (release build + symbolic runs).
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  fig1_trends
  fig2_instances
  fig7_footprint
  fig9_lifespan
  fig10_overhead
  fig11_rok
  tab1_ssds
  tab2_comparison
  tab4_offload
  ablations
  upscaling
)

cargo build --release -p ssdtrain-bench --bins
for bin in "${BINS[@]}"; do
  echo
  echo "=============================================================="
  echo ">>> $bin"
  echo "=============================================================="
  cargo run --release -q -p ssdtrain-bench --bin "$bin"
done

echo
echo "CSV mirrors written to results/"
