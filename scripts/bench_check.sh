#!/usr/bin/env bash
# Regression gate over results/BENCH_tiering.json: the per-tier critical
# path must actually differentiate the backends. Two backends reporting
# byte-identical step times means tier link speed stopped reaching the
# step clock (the pre-cost-model behaviour this gate exists to catch);
# the paper testbed must order dram < tiered-4g < ssd, and the
# profile-guided plan must beat the static front-first walk it replaces.
# Regenerate the JSON with:
#   cargo run -p ssdtrain-bench --release --bin bench_tiering
set -euo pipefail
cd "$(dirname "$0")/.."

json=results/BENCH_tiering.json
if [ ! -f "$json" ]; then
    echo "FAIL: missing $json (run the bench_tiering binary first)" >&2
    exit 1
fi

awk '
  /"name":/ {
    line = $0
    sub(/.*"name": "/, "", line)
    sub(/".*/, "", line)
    name = line
  }
  # Only backend objects carry step_secs, so `name` still holds the
  # backend label here (tier entries never print).
  /"step_secs":/ {
    v = $0
    sub(/.*"step_secs": /, "", v)
    sub(/,.*/, "", v)
    steps[name] = v
    order[n++] = name
  }
  END {
    fail = 0
    if (n < 2) {
      print "FAIL: fewer than two backends in the bench report"
      fail = 1
    }
    # Byte-identical step times between any two backends: the timing
    # model degenerated. Compare the formatted strings, not the floats.
    for (i = 0; i < n; i++)
      for (j = i + 1; j < n; j++)
        if (steps[order[i]] == steps[order[j]]) {
          printf "FAIL: %s and %s report byte-identical step_secs (%s)\n", \
                 order[i], order[j], steps[order[i]]
          fail = 1
        }
    if (("dram" in steps) && ("tiered-4g" in steps) && ("ssd" in steps)) {
      if (!(steps["dram"] + 0 < steps["tiered-4g"] + 0 && \
            steps["tiered-4g"] + 0 < steps["ssd"] + 0)) {
        printf "FAIL: expected dram < tiered-4g < ssd, got %s / %s / %s\n", \
               steps["dram"], steps["tiered-4g"], steps["ssd"]
        fail = 1
      }
    } else {
      print "FAIL: bench report is missing one of dram / tiered-4g / ssd"
      fail = 1
    }
    if ("tiered-4g-planned" in steps && \
        !(steps["tiered-4g-planned"] + 0 < steps["tiered-4g"] + 0)) {
      printf "FAIL: planned placement (%s s) must beat the static walk (%s s)\n", \
             steps["tiered-4g-planned"], steps["tiered-4g"]
      fail = 1
    }
    if (fail) exit 1
    printf "bench gate ok: %d backends, step times distinct and ordered\n", n
  }
' "$json"

# Capacity gate over results/BENCH_capacity.json: offloading optimizer
# state to the array must buy model size the bounded host pool cannot
# (ssd/tiered max_hidden strictly above dram-only), and the overlapped
# optimizer update must expose strictly less time than the inline one.
# Regenerate with:
#   cargo run -p ssdtrain-bench --release --bin bench_capacity
capacity=results/BENCH_capacity.json
if [ ! -f "$capacity" ]; then
    echo "FAIL: missing $capacity (run the bench_capacity binary first)" >&2
    exit 1
fi

awk '
  /"name":/ {
    line = $0
    sub(/.*"name": "/, "", line)
    sub(/".*/, "", line)
    name = line
    ov = ($0 ~ /"overlap": true/) ? "yes" : "no"
    v = $0
    sub(/.*"max_hidden": /, "", v)
    sub(/,.*/, "", v)
    hidden[name "/" ov] = v + 0
  }
  /"backend":/ {
    line = $0
    sub(/.*"backend": "/, "", line)
    sub(/".*/, "", line)
    b = line
    inline = $0
    sub(/.*"opt_secs_inline": /, "", inline)
    sub(/,.*/, "", inline)
    exposed = $0
    sub(/.*"opt_exposed_overlap": /, "", exposed)
    sub(/[,}].*/, "", exposed)
    timed[b] = 1
    if (!(exposed + 0 < inline + 0)) {
      printf "FAIL: %s: overlapped exposure (%s s) must stay strictly below the inline update (%s s)\n", \
             b, exposed, inline
      fail = 1
    }
  }
  END {
    for (b in timed) nb++
    if (nb < 3) {
      print "FAIL: capacity report is missing backend timings"
      fail = 1
    }
    split("no yes", ovs, " ")
    for (i in ovs) {
      ov = ovs[i]
      if (!(("ssd/" ov) in hidden) || !(("dram/" ov) in hidden) || \
          !(("tiered-4g/" ov) in hidden)) {
        printf "FAIL: capacity report is missing a backend at overlap=%s\n", ov
        fail = 1
        continue
      }
      if (!(hidden["ssd/" ov] > hidden["dram/" ov])) {
        printf "FAIL: overlap=%s: ssd max_hidden (%d) must exceed dram-only (%d)\n", \
               ov, hidden["ssd/" ov], hidden["dram/" ov]
        fail = 1
      }
      if (!(hidden["tiered-4g/" ov] > hidden["dram/" ov])) {
        printf "FAIL: overlap=%s: tiered max_hidden (%d) must exceed dram-only (%d)\n", \
               ov, hidden["tiered-4g/" ov], hidden["dram/" ov]
        fail = 1
      }
    }
    if (fail) exit 1
    printf "capacity gate ok: array-backed capacity above dram-only, overlap exposure below inline\n"
  }
' "$capacity"

# I/O-path gate over results/BENCH_io.json: write coalescing must pay —
# the coalesced arms' effective WAF and tiered step time strictly below
# the per-tensor prefetching baseline — and the double-buffered group
# prefetch must not stall the backward more than on-demand loads do.
# Regenerate with:
#   cargo run -p ssdtrain-bench --release --bin bench_io
io=results/BENCH_io.json
if [ ! -f "$io" ]; then
    echo "FAIL: missing $io (run the bench_io binary first)" >&2
    exit 1
fi

awk '
  /"name":/ {
    line = $0
    sub(/.*"name": "/, "", line)
    sub(/".*/, "", line)
    name = line
    v = $0; sub(/.*"step_secs": /, "", v); sub(/,.*/, "", v); step[name] = v + 0
    v = $0; sub(/.*"waf": /, "", v); sub(/,.*/, "", v); waf[name] = v + 0
    v = $0; sub(/.*"load_stall_secs": /, "", v); sub(/,.*/, "", v); stall[name] = v + 0
    v = $0; sub(/.*"coalesce_segments": /, "", v); sub(/,.*/, "", v); segs[name] = v + 0
    n++
  }
  END {
    fail = 0
    base = "per-tensor-depth2"
    if (!(base in step) || !("per-tensor-ondemand" in step)) {
      print "FAIL: io report is missing a per-tensor baseline arm"
      exit 1
    }
    coalesced = 0
    for (name in step) {
      if (name ~ /^coalesced-/) {
        coalesced++
        if (!(segs[name] > 0)) {
          printf "FAIL: %s sealed no segments — the coalescer never engaged\n", name
          fail = 1
        }
        if (!(waf[name] < waf[base])) {
          printf "FAIL: %s waf (%.6f) must be strictly below per-tensor (%.6f)\n", \
                 name, waf[name], waf[base]
          fail = 1
        }
        if (!(step[name] < step[base])) {
          printf "FAIL: %s step (%.6f s) must be strictly below per-tensor (%.6f s)\n", \
                 name, step[name], step[base]
          fail = 1
        }
        if (!(stall[name] <= stall["per-tensor-ondemand"])) {
          printf "FAIL: %s backward stall (%.6f s) must not exceed on-demand (%.6f s)\n", \
                 name, stall[name], stall["per-tensor-ondemand"]
          fail = 1
        }
      }
    }
    if (coalesced < 2) {
      print "FAIL: io report needs at least two coalesced arms (segment-size axis)"
      fail = 1
    }
    if (fail) exit 1
    printf "io gate ok: %d arms, coalesced waf and step below per-tensor, group stall bounded\n", n
  }
' "$io"
