#!/usr/bin/env bash
# The checks a CI pipeline runs on every change.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
