#!/usr/bin/env bash
# The checks a CI pipeline runs on every change. Builds are offline by
# design: all third-party deps are vendored shims (see DESIGN.md §4).
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
# The observability golden file must stay byte-stable (regenerate with
# UPDATE_GOLDEN=1 after intentional trace/exporter changes).
cargo test -q --test trace_observability
# Tier timing must stay differential: link speeds reach the step clock
# (tier_timing) and the cost model's predictions track the simulator
# (proptest_invariants). Run explicitly so a test-harness filter can
# never silently drop them.
cargo test -q --test tier_timing
cargo test -q --test proptest_invariants
# The offload-class differential suite: losses must stay bit-identical
# across the in-memory, inline-offloaded and overlapped optimizer
# paths, healthy or faulted. Run explicitly for the same reason.
cargo test -q --test optimizer_offload
# The fault × recovery matrix must hold through the coalesced/prefetched
# I/O path with bit-identical losses. Run explicitly for the same reason.
cargo test -q --test fault_injection
# The lint's own contract: golden diagnostics over the seeded fixture
# trees (regenerate with UPDATE_GOLDEN=1 after intentional rule
# changes) plus the --explain CLI surface. Run explicitly so a harness
# filter can never silently drop the analyzer's regression net.
cargo test -q -p ssdtrain-lint --test golden_diagnostics
cargo test -q -p ssdtrain-lint --test explain_cli
# The checked-in bench report must keep the backends' step times
# distinct and ordered (see the script header for the regeneration
# command).
scripts/bench_check.sh
cargo clippy --workspace -- -D warnings
# Project-invariant lint: sim-clock, panic-freedom, error discipline and
# the flow rules (see DESIGN.md §7). Exits non-zero on any violation.
# The full pass keeps the workspace clean; the --changed-only pass is
# what a PR pipeline gates on (diagnostics scoped to the files the
# branch touched, against the merge base with origin/main).
cargo run -p ssdtrain-lint --release -- --format json
cargo run -p ssdtrain-lint --release -- --changed-only --format json
# SARIF is what code-scanning dashboards ingest: the run must stay clean
# in that mode too, and the report must be byte-stable — two runs over
# an unchanged tree may not differ, or diff-based upload dedup breaks.
cargo run -p ssdtrain-lint --release -- --format sarif > target/lint-run1.sarif
cargo run -p ssdtrain-lint --release -- --format sarif > target/lint-run2.sarif
cmp target/lint-run1.sarif target/lint-run2.sarif
# Doc-drift gate: every rule the binary knows must have a row in the
# DESIGN.md §7 catalogue, so the docs can never silently fall behind
# the analyzer (new rules land with their rationale or CI fails).
cargo run -q -p ssdtrain-lint --release -- --list-rules \
  | awk '{print $1}' \
  | while read -r rule; do
      grep -q "^| \`$rule\`" DESIGN.md \
        || { echo "DESIGN.md §7 is missing a catalogue row for rule \`$rule\`" >&2; exit 1; }
    done
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps
