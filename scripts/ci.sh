#!/usr/bin/env bash
# The checks a CI pipeline runs on every change. Builds are offline by
# design: all third-party deps are vendored shims (see DESIGN.md §4).
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
