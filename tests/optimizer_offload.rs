//! Differential tests for the typed offload-class API: moving
//! gradients and optimizer state through the cache — inline or with
//! the update overlapped into the next step's forward — is a
//! performance decision, never a numerics one, and it must stay that
//! way under injected faults for every recovery policy.

use ssdtrain::{ArgValue, OffloadClass, RecoveryPolicy, TensorCacheConfig, TraceSink};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
use ssdtrain_train::{OffloadBackend, SessionBuilder, SessionConfig, TrainSession};

const STEPS: usize = 5;
const MOMENTUM: f32 = 0.9;

fn losses(s: &mut TrainSession, n: usize) -> Vec<f32> {
    (0..n).map(|_| s.run_step().expect("step").loss).collect()
}

/// The reference: everything resident, plain momentum SGD.
fn in_memory() -> TrainSession {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .strategy(ssdtrain::PlacementStrategy::Keep)
        .momentum(MOMENTUM)
        .seed(11)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session")
}

/// All three classes through the cache; `overlap` picks between the
/// inline update and the deferred one that hides under the next
/// forward.
fn offloaded_builder(overlap: bool) -> SessionBuilder {
    SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .offload(OffloadClass::Gradient, true)
        .offload(OffloadClass::OptimizerState, true)
        .overlap_optimizer(overlap)
        .momentum(MOMENTUM)
        .seed(11)
}

fn offloaded(overlap: bool) -> TrainSession {
    TrainSession::new(offloaded_builder(overlap).build().expect("valid config")).expect("session")
}

#[test]
fn losses_are_bit_identical_across_all_three_update_paths() {
    let reference = losses(&mut in_memory(), STEPS);
    assert!(reference.iter().all(|l| l.is_finite()));
    assert_eq!(
        losses(&mut offloaded(false), STEPS),
        reference,
        "inline offloaded update drifted from the in-memory optimizer"
    );
    assert_eq!(
        losses(&mut offloaded(true), STEPS),
        reference,
        "overlapped update drifted from the in-memory optimizer"
    );
}

#[test]
fn state_traffic_shows_up_in_the_per_class_counters() {
    let mut s = offloaded(true);
    let _ = losses(&mut s, STEPS);
    let stats = s.cache().expect("cache").stats();
    for class in [OffloadClass::Gradient, OffloadClass::OptimizerState] {
        let c = stats.class(class).expect("class lane");
        assert!(c.stores > 0, "{class:?} must store");
        assert!(c.offloaded_bytes > 0, "{class:?} must move bytes");
        assert_eq!(
            c.offloaded_bytes, c.reloaded_bytes,
            "{class:?} state round-trips completely"
        );
    }
    // The class lanes partition the global account exactly.
    let (off, re) = stats.classes.iter().fold((0, 0), |(o, r), c| {
        (o + c.offloaded_bytes, r + c.reloaded_bytes)
    });
    assert_eq!(off, stats.offloaded_bytes);
    assert_eq!(re, stats.reloaded_bytes);
}

#[test]
fn overlap_survives_injected_faults_under_every_absorbing_policy() {
    let reference = losses(&mut in_memory(), STEPS);
    let fault = || {
        FaultPlan::new(42).with_recurring_fault(
            FaultTrigger::ByteThreshold { bytes: 16 << 10 },
            FaultKind::WriteError,
        )
    };
    for overlap in [false, true] {
        // Keep-resident: failed state stores stay on the GPU.
        let mut b = offloaded_builder(overlap)
            .recovery(RecoveryPolicy::KeepResident)
            .fault(fault());
        let mut s = TrainSession::new(b.build().expect("valid config")).expect("session");
        let mut kept = 0;
        let mut got = Vec::new();
        for _ in 0..STEPS {
            let m = s.run_step().expect("keep-resident absorbs the fault");
            kept += m.offload.kept_resident_bytes;
            got.push(m.loss);
        }
        assert!(kept > 0, "overlap={overlap}: the fault plan must fire");
        assert_eq!(got, reference, "overlap={overlap}: keep-resident numerics");

        // Fallback-target: failed state stores re-route to host DRAM.
        b = offloaded_builder(overlap)
            .recovery(RecoveryPolicy::FallbackTarget)
            .fallback(OffloadBackend::Dram)
            .fault(fault());
        let mut s = TrainSession::new(b.build().expect("valid config")).expect("session");
        let mut fell_back = 0;
        let mut got = Vec::new();
        for _ in 0..STEPS {
            let m = s.run_step().expect("the fallback absorbs the fault");
            fell_back += m.offload.fallback_bytes;
            got.push(m.loss);
        }
        assert!(fell_back > 0, "overlap={overlap}: the fault plan must fire");
        assert_eq!(got, reference, "overlap={overlap}: fallback numerics");
    }
}

#[test]
fn fail_step_surfaces_state_store_faults_as_typed_errors() {
    for overlap in [false, true] {
        let b = offloaded_builder(overlap)
            .recovery(RecoveryPolicy::FailStep)
            .fault(FaultPlan::new(42).with_recurring_fault(
                FaultTrigger::ByteThreshold { bytes: 16 << 10 },
                FaultKind::WriteError,
            ));
        let mut s = TrainSession::new(b.build().expect("valid config")).expect("session");
        let failed = (0..STEPS).any(|_| s.run_step().is_err());
        assert!(failed, "overlap={overlap}: FailStep must surface the fault");
    }
}

#[test]
fn the_overlapped_update_exposes_less_than_the_inline_one() {
    // Paper-scale symbolic run: enough state traffic that the inline
    // update's loads take measurable (simulated) time, while the
    // overlapped one hides behind the next forward.
    let session = |overlap: bool| -> TrainSession {
        let cfg = SessionConfig::builder()
            .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
            .batch_size(16)
            .symbolic(true)
            .offload(OffloadClass::Gradient, true)
            .offload(OffloadClass::OptimizerState, true)
            .overlap_optimizer(overlap)
            .momentum(MOMENTUM)
            .seed(5)
            .build()
            .expect("valid config");
        TrainSession::new(cfg).expect("session")
    };
    // Step 1 bootstraps the state; steady state starts at step 2
    // (inline) / step 3 (overlap's first deferred update lands then).
    let mut inline = session(false);
    let mut overlap = session(true);
    let (mut inline_last, mut overlap_last) = (None, None);
    for _ in 0..3 {
        inline_last = Some(inline.run_step().expect("step"));
        overlap_last = Some(overlap.run_step().expect("step"));
    }
    let inline_last = inline_last.expect("ran");
    let overlap_last = overlap_last.expect("ran");
    assert!(
        inline_last.opt_secs > 0.0,
        "the inline update must take simulated time"
    );
    assert_eq!(overlap_last.opt_secs, 0.0, "overlap runs nothing inline");
    assert!(
        overlap_last.opt_exposed_secs < inline_last.opt_secs,
        "overlap must expose less than the inline update: exposed {} vs inline {}",
        overlap_last.opt_exposed_secs,
        inline_last.opt_secs
    );
}

#[test]
fn profiled_arrival_forecast_never_exposes_more_than_uniform() {
    // The forward pass is not uniform across modules (embedding vs
    // transformer blocks), so after a profiling step the overlapped
    // engine forecasts stage arrivals from the observed per-module
    // forward times instead of `j / S`. On the paper testbed the
    // measured forecast must never expose more delay than the uniform
    // assumption would have, for the same per-stage load-ready times.
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
        .batch_size(16)
        .symbolic(true)
        .offload(OffloadClass::Gradient, true)
        .offload(OffloadClass::OptimizerState, true)
        .overlap_optimizer(true)
        .momentum(MOMENTUM)
        .seed(5)
        .trace(TraceSink::enabled())
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let (profile, _) = s.profile_step().expect("profile step");
    assert!(
        profile.modules.len() > 1,
        "the profile must resolve per-module forward times"
    );
    for _ in 0..3 {
        s.run_step().expect("step");
    }

    // Reconstruct the forecast inputs from the last step's per-stage
    // overlap instants: the load-ready times do not depend on the
    // arrival model (loads are all submitted at t = 0), so replaying
    // the exposure recurrence with uniform arrivals over the same
    // readies gives the counterfactual this run is measured against.
    let f64_arg = |e: &ssdtrain::TraceEvent, key: &str| -> f64 {
        match e.args.iter().find(|(k, _)| *k == key) {
            Some((_, ArgValue::F64(v))) => *v,
            other => panic!("{} missing {key}: {other:?}", e.name),
        }
    };
    let events = s.trace().events();
    let last_step = events.iter().map(|e| e.step).max().expect("events");
    let mut stages: Vec<(usize, f64, f64, f64, f64)> = events
        .iter()
        .filter(|e| e.step == last_step && e.name.starts_with("opt.overlap.s"))
        .map(|e| {
            let j: usize = e.name["opt.overlap.s".len()..]
                .parse()
                .expect("stage index suffix");
            (
                j,
                f64_arg(e, "ready_secs"),
                f64_arg(e, "arrival_secs"),
                f64_arg(e, "exposed_secs"),
                f64_arg(e, "fwd_estimate_secs"),
            )
        })
        .collect();
    assert!(!stages.is_empty(), "the overlapped update must have run");
    stages.sort_by_key(|s| s.0);
    let n = stages.len() as f64;
    let fwd_estimate = stages[0].4;
    assert!(fwd_estimate > 0.0, "forward estimate must be measured");

    let profiled_exposed: f64 = stages.iter().map(|s| s.3).sum();
    let mut uniform_exposed = 0.0;
    let mut nonuniform = false;
    for &(j, ready, arrival, _, _) in stages.iter() {
        let uniform_arrival = fwd_estimate * j as f64 / n + uniform_exposed;
        uniform_exposed += (ready - uniform_arrival).max(0.0);
        if (arrival - uniform_arrival).abs() > 1e-12 {
            nonuniform = true;
        }
    }
    assert!(
        nonuniform,
        "the profiled forecast must actually differ from uniform"
    );
    assert!(
        profiled_exposed <= uniform_exposed + 1e-9,
        "profiled forecast exposed {profiled_exposed} > uniform forecast {uniform_exposed}"
    );
}
