//! Determinism guarantees: the whole stack — kernels, RNG, scheduler,
//! cache, simulator — must be exactly reproducible, because the paper's
//! methodology (and our bit-identical-numerics claim) depends on it.

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_train::{SessionConfig, StepMetrics, TrainSession};

fn run_steps(strategy: PlacementStrategy, symbolic: bool, steps: usize) -> Vec<StepMetrics> {
    let model = if symbolic {
        ModelConfig::paper_scale(Arch::Bert, 2048, 2).with_tp(2)
    } else {
        ModelConfig::tiny_gpt()
    };
    let cfg = SessionConfig::builder()
        .model(model)
        .batch_size(if symbolic { 8 } else { 2 })
        .strategy(strategy)
        .cache(if symbolic {
            TensorCacheConfig::default()
        } else {
            TensorCacheConfig::offload_everything()
        })
        .symbolic(symbolic)
        .seed(99)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    (0..steps).map(|_| s.run_step().expect("step")).collect()
}

#[test]
fn identical_sessions_produce_identical_metrics() {
    for strategy in [
        PlacementStrategy::Keep,
        PlacementStrategy::Offload,
        PlacementStrategy::Recompute,
        PlacementStrategy::Hybrid {
            recompute_layers: 1,
        },
    ] {
        let a = run_steps(strategy, true, 2);
        let b = run_steps(strategy, true, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.step_secs, y.step_secs, "{strategy}");
            assert_eq!(x.act_peak_bytes, y.act_peak_bytes, "{strategy}");
            assert_eq!(x.total_peak_bytes, y.total_peak_bytes, "{strategy}");
            assert_eq!(x.model_flops, y.model_flops, "{strategy}");
            assert_eq!(
                x.offload.offloaded_bytes, y.offload.offloaded_bytes,
                "{strategy}"
            );
            assert_eq!(x.timeline.len(), y.timeline.len(), "{strategy}");
        }
    }
}

#[test]
fn numeric_losses_are_reproducible_across_sessions() {
    let a: Vec<f32> = run_steps(PlacementStrategy::Offload, false, 4)
        .iter()
        .map(|m| m.loss)
        .collect();
    let b: Vec<f32> = run_steps(PlacementStrategy::Offload, false, 4)
        .iter()
        .map(|m| m.loss)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn model_flops_are_strategy_independent() {
    // The *algorithmic* FLOP count (model throughput's numerator) must
    // not depend on the placement strategy — recompute's extra passes
    // are excluded by definition (Section 4.3).
    let keep = run_steps(PlacementStrategy::Keep, true, 1)[0].model_flops;
    let off = run_steps(PlacementStrategy::Offload, true, 1)[0].model_flops;
    let rec = run_steps(PlacementStrategy::Recompute, true, 1)[0].model_flops;
    assert_eq!(keep, off);
    assert_eq!(keep, rec);
}

#[test]
fn different_seeds_change_numerics_but_not_timing() {
    // Symbolic timing depends on shapes only; seeds must not perturb it.
    let mk = |seed: u64| {
        let cfg = SessionConfig::builder()
            .model(ModelConfig::paper_scale(Arch::Bert, 2048, 2).with_tp(2))
            .batch_size(8)
            .strategy(PlacementStrategy::Keep)
            .symbolic(true)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        s.run_step().expect("step").step_secs
    };
    assert_eq!(mk(1), mk(2));
}
