//! Backend differential suite: the tiered DRAM→SSD stack must be a pure
//! performance/endurance knob — numerics are bit-identical across every
//! backend (and against keeping activations resident), and the per-tier
//! counters account exactly the traffic the flat design aggregated.

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_models::ModelConfig;
use ssdtrain_train::{OffloadBackend, SessionConfig, StepMetrics, TrainSession};

const STEPS: usize = 3;

fn run_backend(backend: OffloadBackend) -> Vec<StepMetrics> {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .seed(23)
        .backend(backend)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    (0..STEPS).map(|_| s.run_step().expect("step")).collect()
}

fn losses(metrics: &[StepMetrics]) -> Vec<f32> {
    metrics.iter().map(|m| m.loss).collect()
}

/// Bytes that actually reached a device this step: every offloaded byte
/// except the data-forwarded stores that were never cancelled — those
/// stay priced on the simulated link but their commit is skipped, which
/// is exactly what the flat design's target-level aggregate excluded.
fn committed_bytes(m: &StepMetrics) -> u64 {
    m.offload.offloaded_bytes - (m.offload.forwarded_bytes - m.offload.cancelled_bytes)
}

#[test]
fn every_backend_is_bit_identical_to_keeping_resident() {
    let keep_cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .strategy(PlacementStrategy::Keep)
        .seed(23)
        .build()
        .expect("valid config");
    let mut keep = TrainSession::new(keep_cfg).expect("session");
    let keep_losses: Vec<f32> = (0..STEPS)
        .map(|_| keep.run_step().expect("step").loss)
        .collect();

    let ssd = run_backend(OffloadBackend::Ssd);
    let dram = run_backend(OffloadBackend::Dram);
    // An 8 KiB front tier forces mid-step spilling; a huge one absorbs
    // everything. Both must leave the numbers untouched.
    let spilling = run_backend(OffloadBackend::Tiered {
        dram_bytes: 8 << 10,
    });
    let roomy = run_backend(OffloadBackend::Tiered {
        dram_bytes: 1 << 30,
    });

    assert_eq!(losses(&ssd), keep_losses, "ssd vs keep");
    assert_eq!(losses(&dram), keep_losses, "dram vs keep");
    assert_eq!(losses(&spilling), keep_losses, "spilling tiered vs keep");
    assert_eq!(losses(&roomy), keep_losses, "roomy tiered vs keep");
}

#[test]
fn single_tier_backends_expose_one_tier_of_counters() {
    let ssd = run_backend(OffloadBackend::Ssd);
    for m in &ssd {
        let tiers = &m.offload.tiers;
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].name, "ssd");
        assert_eq!(tiers[0].spilled_in_bytes, 0);
        assert_eq!(tiers[0].demoted_in_bytes, 0);
        // The single tier carries the whole device-level aggregate the
        // flat design exposed, and never more than the link-priced
        // traffic (forwarded-but-uncancelled stores skip their commit).
        assert_eq!(tiers[0].bytes_written, committed_bytes(m));
        assert!(tiers[0].bytes_written <= m.ssd_host_writes);
        assert_eq!(m.ssd_host_writes, m.offload.offloaded_bytes);
    }

    let dram = run_backend(OffloadBackend::Dram);
    for m in &dram {
        assert_eq!(m.offload.tiers.len(), 1);
        assert_eq!(m.offload.tiers[0].name, "cpu");
    }
}

#[test]
fn tight_front_tier_spills_and_conserves_the_aggregate() {
    let metrics = run_backend(OffloadBackend::Tiered {
        dram_bytes: 8 << 10,
    });
    for m in &metrics {
        let tiers = &m.offload.tiers;
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].name, "dram");
        assert_eq!(tiers[1].name, "ssd");
        // The tight front tier fills and the overflow lands behind it.
        assert!(tiers[0].bytes_written > 0, "front tier absorbs something");
        assert!(tiers[1].spilled_in_bytes > 0, "overflow spills to ssd");
        assert_eq!(m.offload.spilled_bytes, tiers[1].spilled_in_bytes);
        // Per-tier writes sum back to the flat aggregate, and every
        // committed byte is on exactly one tier.
        let per_tier: u64 = tiers.iter().map(|t| t.bytes_written).sum();
        assert_eq!(per_tier, committed_bytes(m));
        // Healthy run: demotion is a fault-recovery path only.
        assert_eq!(tiers[1].demoted_in_bytes, 0);
    }
}

#[test]
fn roomy_front_tier_keeps_the_ssd_idle() {
    let metrics = run_backend(OffloadBackend::Tiered {
        dram_bytes: 1 << 30,
    });
    for m in &metrics {
        let tiers = &m.offload.tiers;
        assert_eq!(tiers.len(), 2);
        assert!(tiers[0].bytes_written > 0);
        assert_eq!(tiers[1].bytes_written, 0, "nothing reaches the ssd");
        assert_eq!(m.offload.spilled_bytes, 0);
    }
}
