//! Property-based tests over the core data structures and invariants:
//! the store queue's FIFO schedule, memory-timeline conservation, tensor
//! identity stability, serialisation round trips, the adaptive planner's
//! monotonicity, and numeric/symbolic agreement of kernel shapes.

use proptest::prelude::*;
use ssdtrain::adaptive::{AdaptivePlan, ModuleProfile, StepProfile};
use ssdtrain::{CostModel, CpuTarget, IoEngine, OffloadTarget, Tier, TierLink, TierStack};
use ssdtrain_simhw::{GpuMemory, SimClock, SimTime};
use ssdtrain_tensor::storage::{f16_bits_to_f32, f32_to_f16_bits};
use ssdtrain_tensor::{Device, MemClass, MemTracker, Prng, Tensor};
use std::sync::Arc;

// ---------------------------------------------------------------------
// I/O engine
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn store_queue_is_fifo_and_gapless_under_cancellation(
        sizes in prop::collection::vec(1u64..10_000_000, 1..40),
        cancel_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let clock = SimClock::new();
        let io = IoEngine::new(clock, 1e9, 1e9);
        let jobs: Vec<_> = sizes.iter().map(|s| io.submit_store(*s)).collect();
        // Cancel a subset (only queued jobs actually cancel).
        let mut live_bytes: u64 = sizes.iter().sum();
        for (i, job) in jobs.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()]
                && io.try_cancel_store(*job, SimTime::ZERO)
            {
                live_bytes -= sizes[i];
            }
        }
        prop_assert_eq!(io.bytes_written(), live_bytes);
        // Remaining jobs: ends strictly increasing, total time = bytes/bw.
        let mut ends: Vec<f64> = jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| {
                // store_end panics on cancelled jobs; recover liveness
                // from the mask decision above.
                !cancel_mask[*i % cancel_mask.len()] || io.store_started(**j, SimTime::ZERO)
            })
            .map(|(_, j)| io.store_end(*j).as_secs())
            .collect();
        let drain = io.writes_drain_at().as_secs();
        prop_assert!((drain - live_bytes as f64 / 1e9).abs() < 1e-6);
        ends.sort_by(f64::total_cmp);
        for w in ends.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn loads_never_finish_before_their_transfer_time(
        sizes in prop::collection::vec(1u64..50_000_000, 1..30),
    ) {
        let clock = SimClock::new();
        let io = IoEngine::new(clock.clone(), 1e9, 2e9);
        let mut prev_end = 0.0;
        for s in &sizes {
            let ready = io.submit_load(*s).as_secs();
            let min = clock.now().as_secs() + *s as f64 / 2e9;
            prop_assert!(ready >= min - 1e-9);
            prop_assert!(ready >= prev_end, "FIFO order");
            prev_end = ready;
        }
        prop_assert_eq!(io.bytes_read(), sizes.iter().sum::<u64>());
    }
}

proptest! {
    #[test]
    fn write_queue_stays_fifo_under_throttling_and_cancellation(
        sizes in prop::collection::vec(1u64..50_000_000, 2..24),
        factors in prop::collection::vec(1.0f64..8.0, 1..4),
        cancel_mask in prop::collection::vec(any::<bool>(), 24),
        advance_ms in prop::collection::vec(0u32..2000, 1..4),
    ) {
        let clock = SimClock::new();
        let io = IoEngine::new(clock.clone(), 1e9, 1e9);
        let half = sizes.len() / 2;
        let mut jobs: Vec<_> = sizes[..half].iter().map(|s| io.submit_store(*s)).collect();
        // Degrade the device mid-run, with the clock possibly advanced
        // into (or past) the queued work.
        let mut total_factor = 1.0;
        for (i, f) in factors.iter().enumerate() {
            clock.advance_by(advance_ms[i % advance_ms.len()] as f64 / 1000.0);
            io.throttle(*f);
            total_factor *= *f;
        }
        jobs.extend(sizes[half..].iter().map(|s| io.submit_store(*s)));
        prop_assert!(
            (io.effective_write_bps() - 1e9 / total_factor).abs()
                <= 1e9 / total_factor * 1e-9
        );
        // Cancel a random subset; only still-queued jobs actually cancel.
        let live: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(i, j)| {
                !(cancel_mask[*i % cancel_mask.len()]
                    && io.try_cancel_store(**j, clock.now()))
            })
            .map(|(i, _)| i)
            .collect();
        // FIFO survives throttling + cancellation: surviving jobs end in
        // submission order, never before their own submit + transfer
        // time at the original (fastest) bandwidth, and the queue drains
        // exactly when its last survivor does.
        let mut prev_end = 0.0;
        for &i in &live {
            let end = io.store_end(jobs[i]).as_secs();
            prop_assert!(end >= prev_end, "job {i} ends before its predecessor");
            prop_assert!(end >= sizes[i] as f64 / 1e9 - 1e-9);
            prev_end = end;
        }
        prop_assert!((io.writes_drain_at().as_secs() - prev_end).abs() < 1e-9);
        prop_assert_eq!(
            io.bytes_written(),
            live.iter().map(|&i| sizes[i]).sum::<u64>()
        );
    }
}

// ---------------------------------------------------------------------
// Recovery accounting
// ---------------------------------------------------------------------

proptest! {
    // Training sessions are comparatively expensive; a handful of cases
    // still sweeps the trigger x policy space.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn recovery_conserves_the_offloaded_byte_account(
        seed in 0u64..1_000,
        use_fallback in any::<bool>(),
        trigger_idx in 0usize..4,
        knob in 1u64..5,
    ) {
        use ssdtrain::RecoveryPolicy;
        use ssdtrain_models::ModelConfig;
        use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
        use ssdtrain_train::{SessionConfig, TrainSession};

        let trigger = match trigger_idx {
            0 => FaultTrigger::NthOp { nth: knob - 1 },
            1 => FaultTrigger::ByteThreshold { bytes: knob * 4096 },
            2 => FaultTrigger::WearFraction { fraction: 0.0 },
            _ => FaultTrigger::Random { prob: knob as f64 / 8.0 },
        };
        let kind = if trigger_idx == 2 {
            FaultKind::EnduranceExhausted
        } else {
            FaultKind::WriteError
        };
        let session = |fault: Option<FaultPlan>| -> TrainSession {
            let mut builder = SessionConfig::builder()
                .model(ModelConfig::tiny_gpt())
                .batch_size(1)
                .cache(ssdtrain::TensorCacheConfig::offload_everything())
                .recovery(if use_fallback {
                    RecoveryPolicy::FallbackTarget
                } else {
                    RecoveryPolicy::KeepResident
                })
                .seed(seed);
            if let Some(plan) = fault {
                builder = builder.fault(plan);
            }
            let cfg = builder.build().expect("valid config");
            TrainSession::new(cfg).expect("session construction")
        };
        let mut healthy = session(None);
        let mut faulty = session(Some(
            FaultPlan::new(seed).with_recurring_fault(trigger, kind),
        ));
        for step in 0..2 {
            let h = healthy.run_step().expect("healthy step").offload;
            let f = faulty.run_step().expect("recovery absorbs store faults").offload;
            // Every byte the healthy run offloads is accounted for in
            // the faulty run: it stayed on the primary target, moved to
            // the fallback, or was kept resident after a failed store.
            prop_assert_eq!(
                f.offloaded_bytes + f.fallback_bytes + f.kept_resident_bytes,
                h.offloaded_bytes,
                "step {}: rerouted bytes must conserve the healthy account",
                step
            );
            // Bytes only leave the primary account through a failure.
            if f.fallback_bytes + f.kept_resident_bytes > 0 {
                prop_assert!(f.store_failures > 0);
                prop_assert!(f.degraded());
            }
            if use_fallback {
                prop_assert_eq!(
                    f.kept_resident_bytes, 0,
                    "a healthy fallback target absorbs every failed store"
                );
            } else {
                prop_assert_eq!(f.fallback_bytes, 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Offload classes
// ---------------------------------------------------------------------

proptest! {
    // Full training sessions again: a handful of cases sweeps the
    // class-subset x overlap space.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn class_lanes_partition_the_global_byte_account(
        seed in 0u64..1_000,
        grads in any::<bool>(),
        states in any::<bool>(),
        overlap in any::<bool>(),
    ) {
        use ssdtrain::{OffloadClass, TensorCacheConfig};
        use ssdtrain_models::ModelConfig;
        use ssdtrain_train::{SessionConfig, TrainSession};

        let cfg = SessionConfig::builder()
            .model(ModelConfig::tiny_gpt())
            .batch_size(1)
            .cache(TensorCacheConfig::offload_everything())
            .offload(OffloadClass::Gradient, grads)
            .offload(OffloadClass::OptimizerState, states)
            .overlap_optimizer(overlap)
            .momentum(if states { 0.9 } else { 0.0 })
            .seed(seed)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        for _ in 0..2 {
            let _ = s.run_step().expect("step");
        }
        let stats = s.cache().expect("cache").stats();
        // Every byte the cache moved is attributed to exactly one class.
        let (off, re) = stats
            .classes
            .iter()
            .fold((0, 0), |(o, r), c| (o + c.offloaded_bytes, r + c.reloaded_bytes));
        prop_assert_eq!(off, stats.offloaded_bytes);
        prop_assert_eq!(re, stats.reloaded_bytes);
        // Disabled classes move nothing (the lane may exist zeroed —
        // `class_mut` materialises lanes in label order).
        let moved = |class| {
            stats
                .class(class)
                .is_some_and(|c| c.offloaded_bytes + c.reloaded_bytes + c.stores + c.loads > 0)
        };
        if !grads {
            prop_assert!(!moved(OffloadClass::Gradient));
        }
        if !states {
            prop_assert!(!moved(OffloadClass::OptimizerState));
        }
    }
}

proptest! {
    #[test]
    fn state_loads_never_complete_before_their_stores_drain(
        sizes in prop::collection::vec(1usize..4_000, 1..16),
        write_bps in 1e6f64..1e10,
        read_bps in 1e6f64..1e10,
        advance_ms in 0u32..100,
    ) {
        use ssdtrain::{OffloadClass, TensorCache, TensorCacheConfig};

        let clock = SimClock::new();
        let io = IoEngine::new(clock.clone(), write_bps, read_bps);
        let mem = Arc::new(GpuMemory::new(clock.clone(), 1 << 60));
        let cache = TensorCache::new(
            TensorCacheConfig::offload_everything(),
            Arc::new(CpuTarget::new(1 << 40)),
            io,
            mem,
        );
        let dev = Device::cpu();
        let slots: Vec<_> = sizes
            .iter()
            .map(|n| {
                let t = Tensor::zeros([*n], &dev);
                cache
                    .offload_state(&t, OffloadClass::OptimizerState)
                    .expect("offload-everything admits state")
            })
            .collect();
        clock.advance_by(advance_ms as f64 / 1000.0);
        for slot in slots {
            let stored = cache.state_available_at(slot).expect("live slot");
            let ready = cache.load_state(slot).expect("live slot");
            // The reload can never observe bytes the store has not yet
            // landed on the tier: ready >= store completion, and at
            // least the load's own transfer time from now.
            prop_assert!(ready >= stored, "{} < {}", ready.as_secs(), stored.as_secs());
            prop_assert!(ready >= clock.now());
            cache.release_state(slot);
        }
    }
}

// ---------------------------------------------------------------------
// Memory timeline
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn memory_timeline_conserves_bytes(
        events in prop::collection::vec((1u64..1_000_000, any::<bool>(), 0u32..1000), 1..200),
    ) {
        let clock = SimClock::new();
        let mem = GpuMemory::new(clock, 1 << 60);
        let mut alive: i64 = 0;
        for (bytes, is_free, at_ms) in &events {
            let t = SimTime::from_secs(*at_ms as f64 / 1000.0);
            mem.with_time(t, || {
                if *is_free && alive >= *bytes as i64 {
                    mem.on_free(*bytes, MemClass::Activation);
                    alive -= *bytes as i64;
                } else {
                    mem.on_alloc(*bytes, MemClass::Activation);
                    alive += *bytes as i64;
                }
            });
        }
        prop_assert_eq!(mem.resident(MemClass::Activation) as i64, alive);
        // Peak is at least the final level and at least any single alloc.
        prop_assert!(mem.peak_activations() as i64 >= alive);
        let tl = mem.timeline();
        prop_assert_eq!(tl.len(), events.len());
        for w in tl.windows(2) {
            prop_assert!(w[1].time >= w[0].time, "timeline sorted");
        }
        prop_assert_eq!(tl.last().map(|p| p.activations as i64), Some(alive));
    }
}

// ---------------------------------------------------------------------
// Tensor identity and serialisation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tensor_key_is_stable_across_views(
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let dev = Device::cpu();
        let t = Tensor::zeros([rows, cols], &dev);
        let k1 = ssdtrain::id::tensor_key(&t);
        let k2 = ssdtrain::id::tensor_key(&t.clone());
        prop_assert_eq!(&k1, &k2);
        let kt = ssdtrain::id::tensor_key(&t.t());
        prop_assert_eq!(k1.stamp, kt.stamp);
        if rows != cols {
            prop_assert_ne!(&k1.shape, &kt.shape);
        }
    }

    #[test]
    fn f16_roundtrip_error_is_within_half_ulp(v in -60000.0f32..60000.0) {
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        // Half precision has ~10 mantissa bits -> relative error < 2^-10.
        let tol = (v.abs() * 1.0 / 1024.0).max(1e-7);
        prop_assert!((back - v).abs() <= tol, "{v} -> {back}");
    }

    #[test]
    fn f32_storage_bytes_roundtrip_exactly(
        values in prop::collection::vec(-1e30f32..1e30, 1..64),
    ) {
        let dev = Device::cpu();
        let n = values.len();
        let t = Tensor::from_vec(values.clone(), [n], &dev);
        let bytes = t.storage().to_bytes().expect("numeric");
        prop_assert_eq!(t.storage().decode_bytes(&bytes), values);
    }

    #[test]
    fn cpu_target_roundtrips_arbitrary_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        stamp in 1u64..1_000_000,
    ) {
        let target = ssdtrain::CpuTarget::new(1 << 20);
        let key = ssdtrain::id::TensorKey { stamp, shape: vec![payload.len()] };
        target.write(&key, Some(&payload), payload.len() as u64).expect("fits");
        prop_assert_eq!(target.read(&key).expect("present").expect("payload"), payload);
        target.remove(&key);
        prop_assert!(target.read(&key).is_err());
    }
}

// ---------------------------------------------------------------------
// Adaptive planner
// ---------------------------------------------------------------------

fn uniform_profile(n: usize, bytes: u64, secs: f64) -> StepProfile {
    StepProfile {
        modules: (0..n)
            .map(|i| ModuleProfile {
                path: format!("m{i}"),
                offload_bytes: bytes,
                fwd_secs: secs,
                store_secs: 0.0,
                load_secs: 0.0,
            })
            .collect(),
        fwd_total_secs: secs * n as f64,
        fwd_io_bytes: bytes * n as u64,
        fwd_io_secs: 0.0,
    }
}

proptest! {
    #[test]
    fn lower_bandwidth_never_offloads_more(
        n in 2usize..12,
        bytes in 1_000_000u64..1_000_000_000,
        secs in 0.001f64..1.0,
        bw_hi in 1e6f64..1e12,
        ratio in 0.05f64..1.0,
    ) {
        let profile = uniform_profile(n, bytes, secs);
        let hi = AdaptivePlan::decide(&profile, bw_hi, 2.0);
        let lo = AdaptivePlan::decide(&profile, bw_hi * ratio, 2.0);
        // Keeping is monotone: whatever the high-bandwidth plan keeps,
        // the low-bandwidth plan keeps too.
        for kept in &hi.keep_paths {
            prop_assert!(lo.keeps(kept), "hi keeps {kept} but lo does not");
        }
        match (hi.last_offloaded, lo.last_offloaded) {
            (Some(a), Some(b)) => prop_assert!(b <= a),
            (None, Some(_)) => prop_assert!(false, "lo offloads though hi cannot"),
            _ => {}
        }
    }

    #[test]
    fn planner_always_keeps_the_final_module(
        n in 1usize..10,
        bytes in 1u64..1_000_000_000,
        bw in 1.0f64..1e13,
    ) {
        let profile = uniform_profile(n, bytes, 0.01);
        let plan = AdaptivePlan::decide(&profile, bw, 2.0);
        let last = format!("m{}", n - 1);
        prop_assert!(plan.keeps(&last), "{}", last);
    }
}

// ---------------------------------------------------------------------
// Placement cost model
// ---------------------------------------------------------------------

/// A two-tier cost model over a fresh engine with the same link pricing,
/// so modeled times can be replayed against the simulator directly.
fn cost_fixture(
    front_cap: Option<u64>,
    write_bps: [f64; 2],
    read_bps: [f64; 2],
    bus: Option<f64>,
) -> (CostModel, IoEngine) {
    let links = || {
        vec![
            TierLink::new("dram", write_bps[0], read_bps[0]),
            TierLink::new("ssd", write_bps[1], read_bps[1]),
        ]
    };
    let engine = |clock| match bus {
        Some(b) => IoEngine::tiered_with_bus(clock, links(), b),
        None => IoEngine::tiered(clock, links()),
    };
    let mut front = Tier::new("dram", Arc::new(CpuTarget::new(1 << 40)), 0);
    if let Some(c) = front_cap {
        front = front.with_capacity(c);
    }
    let stack = TierStack::new(vec![
        front,
        Tier::new("ssd", Arc::new(CpuTarget::new(1 << 40)), 1),
    ]);
    (
        CostModel::from_parts(&engine(SimClock::new()), &stack),
        engine(SimClock::new()),
    )
}

fn varied_profile(mods: &[(u64, f64)]) -> StepProfile {
    StepProfile {
        modules: mods
            .iter()
            .enumerate()
            .map(|(i, (bytes, secs))| ModuleProfile {
                path: format!("m{i}"),
                offload_bytes: *bytes,
                fwd_secs: *secs,
                store_secs: 0.0,
                load_secs: 0.0,
            })
            .collect(),
        fwd_total_secs: mods.iter().map(|m| m.1).sum(),
        fwd_io_bytes: mods.iter().map(|m| m.0).sum(),
        fwd_io_secs: 0.0,
    }
}

proptest! {
    // Each case replays the modeled byte split through a real engine, so
    // keep the sweep moderate.
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn modeled_step_time_matches_a_direct_simulation(
        mods in prop::collection::vec(
            ((1u64..2_000_000_000, 0.001f64..0.3), 0usize..3),
            1..12,
        ),
        write_bps in (1e8f64..1e10, 1e8f64..1e10).prop_map(|(a, b)| [a, b]),
        read_bps in (1e8f64..1e10, 1e8f64..1e10).prop_map(|(a, b)| [a, b]),
        bus in (any::<bool>(), 1e8f64..1e10).prop_map(|(s, v)| s.then_some(v)),
        ratio in 0.5f64..4.0,
    ) {
        // `2` keeps the module resident, everything else picks a link.
        let assignment: Vec<Option<usize>> =
            mods.iter().map(|(_, l)| (*l < 2).then_some(*l)).collect();
        let profile = varied_profile(
            &mods.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
        );
        let (model, io) = cost_fixture(None, write_bps, read_bps, bus);

        // Replay the stores through the engine: the modeled drain must
        // be the simulator's drain, job for job.
        for (m, a) in profile.modules.iter().zip(&assignment) {
            if let Some(link) = *a {
                io.submit_store_to(link, m.offload_bytes);
            }
        }
        let sim_drain = (0..io.link_count())
            .map(|l| io.writes_drain_at_on(l).as_secs())
            .fold(0.0f64, f64::max);
        let split = model.split_for(&profile, &assignment);
        let modeled_drain = model.store_drain_secs(&split);
        prop_assert!(
            (modeled_drain - sim_drain).abs() <= sim_drain.max(1e-9) * 1e-6,
            "drain: modeled {modeled_drain} vs simulated {sim_drain}"
        );

        // Reads are independent per link; replay those too.
        let mut sim_load = 0.0f64;
        for (m, a) in profile.modules.iter().zip(&assignment) {
            if let Some(link) = *a {
                sim_load = sim_load.max(
                    io.submit_load_from(link, m.offload_bytes).as_secs(),
                );
            }
        }
        let modeled_load = model.load_secs(&split);
        prop_assert!(
            (modeled_load - sim_load).abs() <= sim_load.max(1e-9) * 1e-6,
            "load: modeled {modeled_load} vs simulated {sim_load}"
        );

        // The full step composes the two stages exactly as the cache's
        // stage barrier does: stores cannot start before the first
        // module computes, reloads race backward compute.
        let fwd = profile.fwd_total_secs;
        let t0 = profile.modules.first().map(|m| m.fwd_secs).unwrap_or(0.0);
        let expect = fwd.max(t0 + sim_drain) + (ratio * fwd).max(sim_load);
        let modeled = model.modeled_step_secs(&profile, &assignment, ratio);
        prop_assert!(
            (modeled - expect).abs() <= expect * 1e-6,
            "step: modeled {modeled} vs composed {expect}"
        );
    }
}

proptest! {
    #[test]
    fn plans_respect_capacity_and_account_every_byte(
        mods in prop::collection::vec(
            (1_000_000u64..2_000_000_000, 0.001f64..0.3),
            1..10,
        ),
        cap in 0u64..8_000_000_000,
        bus in (any::<bool>(), 1e8f64..1e10).prop_map(|(s, v)| s.then_some(v)),
        ratio in 0.5f64..4.0,
    ) {
        let profile = varied_profile(&mods);
        let (model, _io) =
            cost_fixture(Some(cap), [2e9, 1e9], [2e9, 1e9], bus);
        let plan = model.plan(&profile, ratio);
        // The bounded front tier is never overcommitted; the unbounded
        // back tier absorbs the rest, so every byte stays planned.
        prop_assert!(plan.tier_bytes[0] <= cap, "front tier overcommitted");
        prop_assert_eq!(
            plan.tier_bytes.iter().sum::<u64>(),
            profile.fwd_io_bytes,
            "planned bytes must cover the profiled offload set"
        );
        prop_assert_eq!(plan.assignments().len(), profile.modules.len());
        let valid: Vec<_> = model.tiers().iter().map(|t| t.tier).collect();
        for (path, tier) in plan.assignments() {
            prop_assert!(valid.contains(tier), "{path} planned onto an unknown tier");
        }
    }

    #[test]
    fn replanning_is_deterministic_and_never_beats_compute(
        mods in prop::collection::vec(
            (1_000_000u64..2_000_000_000, 0.001f64..0.3),
            1..10,
        ),
        cap in (any::<bool>(), 0u64..8_000_000_000).prop_map(|(s, v)| s.then_some(v)),
        bus in (any::<bool>(), 1e8f64..1e10).prop_map(|(s, v)| s.then_some(v)),
        ratio in 0.5f64..4.0,
    ) {
        let profile = varied_profile(&mods);
        let (model, _io) = cost_fixture(cap, [2e9, 1e9], [2e9, 1e9], bus);
        let first = model.plan(&profile, ratio);
        let again = model.plan(&profile, ratio);
        prop_assert_eq!(&first, &again, "same profile, same plan");
        // No placement can finish before compute does, and the greedy
        // plan is priced with the same floor as its baseline.
        let floor = (1.0 + ratio) * profile.fwd_total_secs - 1e-9;
        prop_assert!(first.modeled_step_secs >= floor);
        prop_assert!(first.baseline_step_secs >= floor);
    }
}

// ---------------------------------------------------------------------
// Numeric/symbolic agreement
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn symbolic_shapes_match_numeric_shapes(
        b in 1usize..3,
        s in 1usize..6,
        h_half in 1usize..5,
    ) {
        let h = h_half * 2;
        let num = Device::cpu();
        let sym = Device::symbolic();
        let mut rng = Prng::seed_from_u64(1);
        let xn = Tensor::randn([b, s, h], 1.0, &mut rng, &num);
        let xs = Tensor::zeros([b, s, h], &sym);
        let wn = Tensor::randn([h, 2 * h], 1.0, &mut rng, &num);
        let ws = Tensor::zeros([h, 2 * h], &sym);
        let (mn2, ms2) = (xn.matmul(&wn), xs.matmul(&ws));
        prop_assert_eq!(mn2.dims(), ms2.dims());
        let (gn, gs) = (xn.gelu(), xs.gelu());
        prop_assert_eq!(gn.dims(), gs.dims());
        let (sn, ss) = (xn.softmax_last(), xs.softmax_last());
        prop_assert_eq!(sn.dims(), ss.dims());
        let (yn, mn, rn) = xn.layernorm(
            &Tensor::ones([h], &num),
            &Tensor::zeros([h], &num),
            1e-5,
        );
        let (ys, ms, rs) = xs.layernorm(
            &Tensor::ones([h], &sym),
            &Tensor::zeros([h], &sym),
            1e-5,
        );
        prop_assert_eq!(yn.dims(), ys.dims());
        prop_assert_eq!(mn.dims(), ms.dims());
        prop_assert_eq!(rn.dims(), rs.dims());
    }

    #[test]
    fn storage_accounting_matches_numel_times_width(
        dims in prop::collection::vec(1usize..6, 1..4),
    ) {
        #[derive(Default)]
        struct Sum(std::sync::atomic::AtomicU64);
        impl MemTracker for Sum {
            fn on_alloc(&self, b: u64, _c: MemClass) {
                self.0.fetch_add(b, std::sync::atomic::Ordering::Relaxed);
            }
            fn on_free(&self, _b: u64, _c: MemClass) {}
        }
        let dev = Device::cpu();
        let tracker = Arc::new(Sum::default());
        dev.set_tracker(tracker.clone());
        let t = Tensor::zeros(dims.clone(), &dev);
        let expect = dims.iter().product::<usize>() as u64 * 4; // F32
        prop_assert_eq!(t.bytes(), expect);
        prop_assert_eq!(tracker.0.load(std::sync::atomic::Ordering::Relaxed), expect);
        dev.clear_tracker();
    }
}

// ---------------------------------------------------------------------
// Zero-copy I/O path: pinned arena, write coalescer, group prefetch
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn arena_slabs_never_alias_and_conserve_bytes(
        ops in prop::collection::vec((1u64..1_000_000, any::<bool>()), 1..60),
    ) {
        use ssdtrain_simhw::BufferArena;
        let arena = BufferArena::new();
        let mut held = Vec::new();
        for (len, release_first) in ops {
            if release_first && !held.is_empty() {
                let slab = held.remove(held.len() / 2);
                prop_assert!(arena.release(slab));
                // Double release is inert: the accounting must not move.
                let before = arena.stats();
                prop_assert!(!arena.release(slab));
                prop_assert_eq!(arena.stats(), before);
            }
            let slab = arena.acquire(len).expect("non-zero request");
            prop_assert!(slab.class_bytes >= slab.len);
            prop_assert_eq!(slab.len, len);
            held.push(slab);
            // No two live slabs overlap, even across class reuse.
            let mut ranges = arena.live_ranges();
            ranges.sort_by_key(|r| r.start);
            for w in ranges.windows(2) {
                prop_assert!(w[0].end <= w[1].start, "aliasing: {:?} vs {:?}", &w[0], &w[1]);
            }
        }
        // Conservation: acquired - released == in use == what we hold.
        let stats = arena.stats();
        prop_assert_eq!(stats.in_use_bytes, held.iter().map(|s| s.len).sum::<u64>());
        prop_assert_eq!(stats.acquired_bytes - stats.released_bytes, stats.in_use_bytes);
        prop_assert!(stats.high_water_bytes >= stats.in_use_bytes);
        for slab in held.drain(..) {
            prop_assert!(arena.release(slab));
        }
        let stats = arena.stats();
        prop_assert_eq!(stats.acquired_bytes, stats.released_bytes);
        prop_assert_eq!(stats.in_use_bytes, 0);
    }

    #[test]
    fn coalescer_conserves_bytes_per_tier_and_class(
        ops in prop::collection::vec(
            (0usize..3, 1u64..4_000_000, 0usize..3, any::<bool>()),
            1..80,
        ),
        segment in 1u64..8_000_000,
    ) {
        use ssdtrain::{OffloadClass, WriteCoalescer};
        let stack = TierStack::new(vec![
            Tier::new("a", Arc::new(CpuTarget::new(1 << 30)), 0),
            Tier::new("b", Arc::new(CpuTarget::new(1 << 30)), 1),
            Tier::new("c", Arc::new(CpuTarget::new(1 << 30)), 2),
        ]);
        let tiers = stack.tier_ids();
        let mut c = WriteCoalescer::new(segment);
        let mut sealed_bytes = 0u64;
        let mut evicted_bytes = 0u64;
        let mut staged = Vec::new(); // (tier, record) currently open
        for (i, (t, bytes, class, evict_one)) in ops.iter().enumerate() {
            let tier = tiers[*t];
            let class = OffloadClass::ALL[*class];
            let record = i as u64;
            if let Some(seg) = c.stage(tier, record, *bytes, class) {
                // A sealed segment's entry sum is its total, every
                // entry belongs to the tier it sealed on, and its
                // members leave the open set.
                prop_assert_eq!(seg.tier, tier);
                prop_assert_eq!(
                    seg.entries.iter().map(|e| e.bytes).sum::<u64>(),
                    seg.total_bytes()
                );
                prop_assert!(seg.total_bytes() >= segment);
                sealed_bytes += seg.total_bytes();
                staged.retain(|(st, sr)| !(
                    *st == tier && seg.entries.iter().any(|e| e.record == *sr)
                ));
            } else {
                staged.push((tier, record));
            }
            if *evict_one && !staged.is_empty() {
                let (et, er) = staged.remove(staged.len() / 2);
                let entry = c.evict(et, er).expect("staged entry evicts");
                evicted_bytes += entry.bytes;
                // A second eviction of the same record is inert.
                prop_assert!(c.evict(et, er).is_none());
            }
        }
        // Flush the tails and check global + per-tier + per-class
        // conservation: staged == sealed + evicted + open(=0 now).
        for seg in c.seal_all() {
            sealed_bytes += seg.total_bytes();
        }
        prop_assert_eq!(c.total_open_bytes(), 0);
        let total = c.counts();
        prop_assert_eq!(total.staged_bytes, total.sealed_bytes + total.evicted_bytes);
        prop_assert_eq!(total.sealed_bytes, sealed_bytes);
        prop_assert_eq!(total.evicted_bytes, evicted_bytes);
        let (mut tier_staged, mut tier_closed) = (0u64, 0u64);
        for t in &tiers {
            let tc = c.tier_counts(*t);
            prop_assert_eq!(tc.staged_bytes, tc.sealed_bytes + tc.evicted_bytes);
            tier_staged += tc.staged_bytes;
            tier_closed += tc.sealed_bytes + tc.evicted_bytes;
        }
        prop_assert_eq!(tier_staged, total.staged_bytes);
        prop_assert_eq!(tier_closed, total.staged_bytes);
        let mut class_staged = 0u64;
        for class in OffloadClass::ALL {
            let cc = c.class_counts(class);
            prop_assert_eq!(cc.staged_bytes, cc.sealed_bytes + cc.evicted_bytes);
            class_staged += cc.staged_bytes;
        }
        prop_assert_eq!(class_staged, total.staged_bytes);
    }
}

proptest! {
    // Whole-session property: a handful of cases is plenty (each runs
    // two numeric steps).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn group_prefetch_never_loads_a_group_twice(
        group in 1usize..4,
        depth in 1usize..4,
        seed in 0u64..1_000,
    ) {
        use ssdtrain::{ArgValue, TensorCacheConfig, TraceSink};
        use ssdtrain_models::ModelConfig;
        use ssdtrain_train::{OffloadBackend, SessionConfig, TrainSession};
        let mut cache = TensorCacheConfig::offload_everything();
        cache.prefetch_group_modules = group;
        cache.prefetch_depth = depth;
        let sink = TraceSink::enabled();
        let cfg = SessionConfig::builder()
            .model(ModelConfig::tiny_gpt())
            .batch_size(2)
            .cache(cache)
            .seed(seed)
            .backend(OffloadBackend::Ssd)
            .trace(sink.clone())
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        for _ in 0..2 {
            let m = s.run_step().expect("step").offload;
            prop_assert!(m.prefetch_groups > 0, "group prefetch must engage");
        }
        // Per step, each group index is fetched at most once.
        let mut seen = std::collections::HashSet::new();
        for e in sink.events().iter().filter(|e| e.name == "prefetch.group") {
            let gidx = match e.args.iter().find(|(k, _)| *k == "group") {
                Some((_, ArgValue::U64(v))) => *v,
                other => panic!("prefetch.group group arg: {other:?}"),
            };
            prop_assert!(
                seen.insert((e.step, gidx)),
                "group {gidx} fetched twice in step {}", e.step
            );
        }
        prop_assert!(!seen.is_empty());
    }
}
