//! Timing-differential suite: tier link speeds must show up in the step
//! critical path. The stage-barrier store drain
//! (`TensorCache::drain_stores`) makes each backend's step time
//! `max(compute, non-overlapped per-tier I/O)` per stage, so on the
//! paper testbed the dram, tiered and ssd backends report *different*
//! step times ordered by their links — and slowing a link can only ever
//! slow the step. When bandwidth is ample the barrier costs nothing and
//! the step collapses back to the compute-bound time, bit-identically
//! across link speeds.

use ssdtrain::PlacementStrategy;
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{OffloadBackend, SessionConfig, StepMetrics, TrainSession};

/// The bench model (BERT H8192 L4, TP=2): deep enough that the testbed's
/// links expose a store drain at the stage barriers.
fn paper_model() -> ModelConfig {
    ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2)
}

fn run_on(backend: OffloadBackend, system: SystemConfig) -> StepMetrics {
    let cfg = SessionConfig::builder()
        .system(system)
        .model(paper_model())
        .batch_size(16)
        .strategy(PlacementStrategy::Offload)
        .symbolic(true)
        .seed(42)
        .backend(backend)
        .build()
        .expect("valid config");
    let mut session = TrainSession::new(cfg).expect("session");
    let _ = session.profile_step().expect("profile step");
    session.run_step().expect("measured step")
}

fn run(backend: OffloadBackend) -> StepMetrics {
    run_on(backend, SystemConfig::dac_testbed())
}

/// The testbed with every offload-path link scaled by `f` (PCIe and the
/// SSD array together, so the effective min scales too).
fn scaled_testbed(f: f64) -> SystemConfig {
    let mut sys = SystemConfig::dac_testbed();
    sys.pcie_bps *= f;
    sys.ssd_array.member.write_bps *= f;
    sys.ssd_array.member.read_bps *= f;
    sys
}

#[test]
fn step_times_are_ordered_by_link_speed() {
    let ssd = run(OffloadBackend::Ssd);
    let dram = run(OffloadBackend::Dram);
    // A front tier sized to hold part of one step's activations: the
    // rest spills to the (slower) array, landing the drain between the
    // two single-tier extremes.
    let tiered = run(OffloadBackend::Tiered {
        dram_bytes: 2 << 30,
    });

    assert!(
        tiered.offload.spilled_bytes > 0,
        "the tiered run must actually split traffic across both links"
    );
    for (name, m) in [("ssd", &ssd), ("dram", &dram), ("tiered", &tiered)] {
        assert!(
            m.offload.store_stall_secs > 0.0,
            "{name}: the testbed's links are slow enough that some store \
             drain must be exposed"
        );
    }
    assert!(
        dram.step_secs < tiered.step_secs,
        "dram {} !< tiered {}",
        dram.step_secs,
        tiered.step_secs
    );
    assert!(
        tiered.step_secs < ssd.step_secs,
        "tiered {} !< ssd {}",
        tiered.step_secs,
        ssd.step_secs
    );
}

#[test]
fn slowing_the_array_never_speeds_the_step() {
    let mut prev: Option<f64> = None;
    for f in [1.0, 0.5, 0.25] {
        let mut sys = SystemConfig::dac_testbed();
        sys.ssd_array.member.write_bps *= f;
        let m = run_on(OffloadBackend::Ssd, sys);
        if let Some(p) = prev {
            assert!(
                m.step_secs >= p,
                "slowing the array write link (×{f}) sped the step up: \
                 {} < {p}",
                m.step_secs
            );
        }
        prev = Some(m.step_secs);
    }
}

#[test]
fn a_slower_write_link_grows_the_exposed_stall() {
    let fast = run(OffloadBackend::Ssd);
    let mut sys = SystemConfig::dac_testbed();
    sys.ssd_array.member.write_bps *= 0.5;
    let slow = run_on(OffloadBackend::Ssd, sys);
    assert!(
        slow.offload.store_stall_secs > fast.offload.store_stall_secs,
        "halving write bandwidth must expose more drain: {} !> {}",
        slow.offload.store_stall_secs,
        fast.offload.store_stall_secs
    );
    assert!(slow.step_secs > fast.step_secs);
}

#[test]
fn ample_bandwidth_is_compute_bound_and_scale_invariant() {
    // 10× and 100× the testbed's links both hide every transfer inside
    // compute; the step times must agree to the bit and no store drain
    // may surface — the pre-barrier, compute-bound behaviour.
    let x10 = run_on(OffloadBackend::Ssd, scaled_testbed(10.0));
    let x100 = run_on(OffloadBackend::Ssd, scaled_testbed(100.0));
    assert_eq!(x10.offload.store_stall_secs, 0.0);
    assert_eq!(x100.offload.store_stall_secs, 0.0);
    assert_eq!(
        x10.step_secs, x100.step_secs,
        "fully-overlapped runs must not depend on the link speed"
    );
    // With writes hidden, the backend choice stops mattering as well.
    let dram_x10 = run_on(OffloadBackend::Dram, scaled_testbed(10.0));
    assert_eq!(x10.step_secs, dram_x10.step_secs);
}

#[test]
fn tier_stall_counters_decompose_the_store_stall() {
    // Per-tier stall counters cover the step's store stall: their sum
    // bounds it from above (links drain concurrently inside one
    // barrier) and equals it for a single-tier backend.
    let ssd = run(OffloadBackend::Ssd);
    let per_tier: f64 = ssd.offload.tiers.iter().map(|t| t.stall_secs).sum();
    assert!((per_tier - ssd.offload.store_stall_secs).abs() < 1e-9);

    let tiered = run(OffloadBackend::Tiered {
        dram_bytes: 2 << 30,
    });
    let per_tier: f64 = tiered.offload.tiers.iter().map(|t| t.stall_secs).sum();
    assert!(per_tier >= tiered.offload.store_stall_secs - 1e-9);
    for t in &tiered.offload.tiers {
        assert!(
            t.bytes_written == 0 || t.write_busy_secs > 0.0,
            "tier {} wrote bytes but reports no link busy time",
            t.name
        );
    }
}
