//! Property-based tests for the tiered offload stack: every stored byte
//! lives in exactly one tier, spills and demotions conserve bytes, and
//! the per-tier counters sum back to the aggregate the flat design kept.

use proptest::prelude::*;
use ssdtrain::id::TensorKey;
use ssdtrain::{CpuTarget, Tier, TierStack};
use std::sync::Arc;

fn key(stamp: u64, len: u64) -> TensorKey {
    TensorKey {
        stamp,
        shape: vec![len as usize],
    }
}

/// A bounded DRAM front tier spilling into an unbounded SSD-like tier.
fn two_tier(front_cap: u64) -> TierStack {
    TierStack::new(vec![
        Tier::new("dram", Arc::new(CpuTarget::new(front_cap)), 0).with_capacity(front_cap),
        Tier::new("ssd", Arc::new(CpuTarget::new(u64::MAX)), 1),
    ])
}

proptest! {
    /// Placement puts every admitted tensor on exactly one tier: its
    /// payload reads back from that tier and from no other, and removal
    /// returns the reservation so the stack drains to empty.
    #[test]
    fn every_stored_byte_lives_in_exactly_one_tier(
        front_cap in 1u64..4_096,
        sizes in prop::collection::vec(1u64..2_048, 1..40),
    ) {
        let stack = two_tier(front_cap);
        let ids = stack.tier_ids();
        let mut placed = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let k = key(i as u64 + 1, len);
            let p = stack.reserve(len).expect("ssd tier is unbounded");
            let payload = vec![(i % 251) as u8; len as usize];
            prop_assert!(stack.write(p.tier, &k, Some(&payload), len).is_ok());
            placed.push((k, len, p.tier, payload));
        }
        for (k, len, home, payload) in &placed {
            for &id in &ids {
                let got = stack.read(id, k, *len);
                if id == *home {
                    let back = got.ok().flatten();
                    prop_assert_eq!(
                        back.as_ref(),
                        Some(payload),
                        "payload must read back from its home tier"
                    );
                } else {
                    prop_assert!(
                        got.is_err(),
                        "key {:?} must not exist on {}",
                        k,
                        stack.name(id)
                    );
                }
            }
        }
        // Reservations account every admitted byte, tier by tier.
        for &id in &ids {
            let expect: u64 = placed
                .iter()
                .filter(|(_, _, home, _)| *home == id)
                .map(|(_, len, _, _)| *len)
                .sum();
            prop_assert_eq!(stack.reserved_bytes(id), expect);
        }
        // Removal drains the stack completely.
        for (k, len, home, _) in &placed {
            stack.remove(*home, k, *len);
        }
        for &id in &ids {
            prop_assert_eq!(stack.reserved_bytes(id), 0);
        }
    }

    /// A spill moves the admission, not the bytes: the sum of reserved
    /// bytes across tiers equals the sum of admitted sizes, and the
    /// spill counter records exactly the bytes that skipped a full
    /// front tier.
    #[test]
    fn spills_conserve_bytes(
        front_cap in 1u64..2_048,
        sizes in prop::collection::vec(1u64..1_024, 1..50),
    ) {
        let stack = two_tier(front_cap);
        let ids = stack.tier_ids();
        let mut admitted = 0u64;
        let mut spilled = 0u64;
        for &len in &sizes {
            let p = stack.reserve(len).expect("ssd tier is unbounded");
            admitted += len;
            if p.spilled {
                prop_assert_eq!(p.tier, ids[1], "spills land behind the front tier");
                spilled += len;
            } else {
                prop_assert_eq!(p.tier, ids[0]);
            }
        }
        let reserved: u64 = ids.iter().map(|&id| stack.reserved_bytes(id)).sum();
        prop_assert_eq!(reserved, admitted, "reservation is conserved across tiers");
        prop_assert!(
            stack.reserved_bytes(ids[0]) <= front_cap,
            "the bounded tier never oversubscribes"
        );
        prop_assert_eq!(stack.counters()[1].spilled_in_bytes, spilled);
    }

    /// Per-tier `bytes_written` sums to the aggregate the flat design
    /// exposed as the single target's write traffic, with or without
    /// demotions shuffling entries between tiers.
    #[test]
    fn per_tier_writes_sum_to_the_flat_aggregate(
        front_cap in 64u64..2_048,
        sizes in prop::collection::vec(1u64..512, 1..30),
        demote_mask in prop::collection::vec(any::<bool>(), 30),
    ) {
        let stack = two_tier(front_cap);
        let ids = stack.tier_ids();
        let mut written = 0u64;
        let mut demoted = 0u64;
        let mut placed = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let k = key(i as u64 + 1, len);
            let p = stack.reserve(len).expect("ssd tier is unbounded");
            prop_assert!(stack.write(p.tier, &k, None, len).is_ok());
            written += len;
            placed.push((k, len, p.tier));
        }
        // Demote a subset of front-tier residents to the tier below.
        for (i, (k, len, home)) in placed.iter_mut().enumerate() {
            if *home == ids[0] && demote_mask[i % demote_mask.len()] {
                let dest = stack.demote(*home, k, None, *len, 0);
                prop_assert_eq!(dest, Some(ids[1]), "the unbounded tier accepts");
                *home = ids[1];
                written += *len; // the destination device accepted a write
                demoted += *len;
            }
        }
        let counters = stack.counters();
        let per_tier: u64 = counters.iter().map(|c| c.bytes_written).sum();
        prop_assert_eq!(per_tier, written);
        prop_assert_eq!(per_tier, stack.total_bytes_written());
        prop_assert_eq!(counters[1].demoted_in_bytes, demoted);
        // Reservations still conserve the admitted bytes after demotion.
        let reserved: u64 = ids.iter().map(|&id| stack.reserved_bytes(id)).sum();
        prop_assert_eq!(reserved, sizes.iter().sum::<u64>());
    }
}
