//! Cross-crate integration: the analytic models of `ssdtrain-analysis`
//! must agree with the functional/symbolic measurements of
//! `ssdtrain-train`, and the public API must compose end to end the way
//! the README shows.

use ssdtrain::{PlacementStrategy, TensorCacheConfig};
use ssdtrain_analysis::ActivationModel;
use ssdtrain_models::{Arch, ModelConfig};
use ssdtrain_simhw::SystemConfig;
use ssdtrain_train::{OffloadBackend, SessionConfig, TrainSession};

fn offload_session(arch: Arch, hidden: usize, layers: usize, batch: usize) -> TrainSession {
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(arch, hidden, layers).with_tp(2))
        .batch_size(batch)
        .symbolic(true)
        .seed(5)
        .build()
        .expect("valid config");
    TrainSession::new(cfg).expect("session")
}

#[test]
fn table4_model_estimate_matches_measured_offload() {
    // The paper validates its S_activations formula against the measured
    // offloaded amount (Table 4, "the figures are close"). Our closed
    // form must track the cache's actual traffic within 15% at all three
    // configurations.
    for (h, l) in [(8192usize, 4usize), (12288, 3), (16384, 2)] {
        let mut s = offload_session(Arch::Bert, h, l, 16);
        let (profile, _) = s.profile_step().expect("profile step");
        let measured = profile.fwd_io_bytes as f64;
        let estimate = ActivationModel::fp16(16, 1024, h, l, 2).step_total_bytes() as f64;
        let err = (estimate / measured - 1.0).abs();
        assert!(
            err < 0.15,
            "H{h} L{l}: measured {measured:.3e} vs estimate {estimate:.3e} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn required_bandwidth_model_tracks_the_simulated_step() {
    // Table 4's bandwidth column: measured offloaded bytes over half the
    // measured step time — and it must fall as hidden grows.
    let mut prev = f64::INFINITY;
    for (h, l) in [(8192usize, 4usize), (12288, 3), (16384, 2)] {
        let mut s = offload_session(Arch::Bert, h, l, 16);
        let (profile, _) = s.profile_step().expect("profile step");
        let m = s.run_step().expect("step");
        let bw = profile.fwd_io_bytes as f64 / (m.step_secs / 2.0);
        assert!(bw < prev, "H{h}: {bw:.2e} should fall below {prev:.2e}");
        prev = bw;
    }
    // The largest configuration fits comfortably within the testbed's
    // 24.4 GB/s array (the paper's full-overlap premise).
    assert!(prev < 24.4e9);
}

#[test]
fn whole_stack_numeric_smoke_for_all_architectures() {
    for arch in [Arch::Gpt, Arch::Bert, Arch::T5] {
        let cfg = SessionConfig::builder()
            .model(match arch {
                Arch::Gpt => ModelConfig::tiny_gpt(),
                Arch::Bert => ModelConfig::tiny_bert(),
                Arch::T5 => ModelConfig::tiny_t5(),
            })
            .batch_size(2)
            .cache(TensorCacheConfig::offload_everything())
            .seed(3)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        let first = s.run_step().expect("step");
        let mut last = first.loss;
        for _ in 0..4 {
            last = s.run_step().expect("step").loss;
        }
        assert!(first.loss.is_finite() && last.is_finite(), "{arch}");
        assert!(first.offload.store_jobs > 0, "{arch} must offload");
    }
}

#[test]
fn adaptive_plan_respects_the_analysis_bandwidth_ordering() {
    // The profiling step's per-module required-bandwidth diagnostic must
    // be monotone for a homogeneous stack — the property the planner's
    // cutoff search relies on.
    let mut s = offload_session(Arch::Bert, 8192, 4, 16);
    let (_, plan) = s.profile_step().expect("profile step");
    let req = &plan.required_bps;
    assert!(req.len() >= 8, "one entry per module: {req:?}");
    for w in req.windows(2) {
        assert!(w[1] > w[0] * 0.7, "roughly increasing: {req:?}");
    }
    assert!(plan.last_offloaded.is_some());
}

#[test]
fn oom_detection_fires_when_keep_exceeds_device_memory() {
    // Keep strategy at batch 32 on H16384 L2 overflows a 40 GB A100 —
    // the situation offloading exists to avoid.
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(Arch::Bert, 16384, 2).with_tp(2))
        .batch_size(48)
        .strategy(PlacementStrategy::Keep)
        .symbolic(true)
        .seed(1)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let keep = s.run_step().expect("step");
    assert!(keep.oom, "keep at B48 H16384 must exceed 40 GB");

    let mut s = offload_session(Arch::Bert, 16384, 2, 48);
    let m = s.run_step().expect("step");
    assert!(
        m.total_peak_bytes < keep.total_peak_bytes,
        "offloading must lower the total peak"
    );
}

#[test]
fn cpu_offload_target_is_numerically_identical_too() {
    // The paper's CPU offloader (Figure 5) shares the tensor-cache logic;
    // only the target and bandwidths differ.
    let run = |backend: OffloadBackend| -> Vec<f32> {
        let cfg = SessionConfig::builder()
            .model(ModelConfig::tiny_gpt())
            .batch_size(2)
            .cache(TensorCacheConfig::offload_everything())
            .seed(17)
            .backend(backend)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        (0..3).map(|_| s.run_step().expect("step").loss).collect()
    };
    assert_eq!(run(OffloadBackend::Ssd), run(OffloadBackend::Dram));
}

#[test]
fn cpu_pool_exhaustion_degrades_gracefully() {
    // Figure 2's argument: host memory cannot absorb paper-scale
    // activation volumes. Shrink the host pool and watch the CPU
    // offloader run out — the cache's default keep-resident recovery
    // must absorb the failures instead of panicking, and report them
    // through the step's offload counters.
    let mut system = SystemConfig::dac_testbed();
    system.host_mem_bytes = 64 << 20; // 64 MiB pinned pool
    let cfg = SessionConfig::builder()
        .system(system)
        .model(ModelConfig::paper_scale(Arch::Bert, 2048, 2).with_tp(2))
        .batch_size(8)
        .symbolic(true)
        .seed(1)
        .backend(OffloadBackend::Dram)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let m = s
        .run_step()
        .expect("keep-resident recovery absorbs the failure");
    assert!(m.degraded(), "exhausted pool should mark the step degraded");
    assert!(m.offload.store_failures > 0);
    assert!(m.offload.kept_resident_bytes > 0);
}

#[test]
fn fused_attention_removes_the_quadratic_activation_term() {
    // Section 4.3: with FlashAttention the S x S probabilities are never
    // materialised, which is why selective recomputation became moot.
    // Compare keep-strategy activation peaks with fused vs unfused
    // attention at a paper-like sequence length.
    let run = |fused: bool| -> u64 {
        // Long sequences, narrow hidden, small vocab: the S x S term
        // dominates everything else when materialised.
        let model = ModelConfig {
            arch: Arch::Bert,
            hidden: 512,
            layers: 2,
            heads: 4,
            vocab: 1024,
            seq: 2048,
            dropout_p: 0.1,
            fused_attention: fused,
            tp: 2,
        };
        let cfg = SessionConfig::builder()
            .model(model)
            .batch_size(8)
            .strategy(PlacementStrategy::Keep)
            .symbolic(true)
            .seed(2)
            .build()
            .expect("valid config");
        let mut s = TrainSession::new(cfg).expect("session");
        s.run_step().expect("step").act_peak_bytes
    };
    let fused = run(true);
    let unfused = run(false);
    // Unfused saves per layer ~ B*heads*S*S probabilities; at S=1024,
    // H=1024 (heads 8, tp 2 -> 4 local) that dwarfs the linear terms.
    assert!(
        unfused > 2 * fused,
        "unfused {unfused} should dwarf fused {fused}"
    );
}

#[test]
fn micro_batched_offloading_still_fully_overlaps() {
    // Figure 4's two-micro-batch timeline: records are kept per
    // micro-batch and switching between them (hint ③) must not expose
    // I/O.
    let cfg = SessionConfig::builder()
        .model(ModelConfig::paper_scale(Arch::Bert, 8192, 4).with_tp(2))
        .batch_size(16)
        .micro_batches(2)
        .symbolic(true)
        .seed(4)
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let _ = s.profile_step().expect("profile step");
    let m = s.run_step().expect("step");
    assert!(
        m.offload.stall_secs < 0.01 * m.step_secs,
        "stall {:.4}s in {:.3}s",
        m.offload.stall_secs,
        m.step_secs
    );
    assert!(m.offload.offloaded_bytes > 0);
}

#[test]
fn wear_metering_matches_the_lifespan_formula() {
    // Run a measured step, then check that extrapolating its write
    // traffic with the analysis crate's lifespan formula matches the
    // wear meter's own projection.
    let mut s = offload_session(Arch::Bert, 8192, 4, 16);
    let _ = s.profile_step().expect("profile step");
    let m = s.run_step().expect("step");
    assert!(m.ssd_host_writes > 0);
    // Testbed array endurance at WAF 1.
    let endurance = SystemConfig::dac_testbed().ssd_array.endurance_bytes(1.0);
    let years =
        ssdtrain_analysis::endurance::lifespan_years(endurance, m.step_secs, m.ssd_host_writes);
    // 4x P5800X sustaining ~12 GB of writes every ~1.4 s: around 4 years.
    assert!((1.0..20.0).contains(&years), "{years}");
    // Consistency with the WearMeter's own arithmetic.
    let meter = SystemConfig::dac_testbed().ssd_array.wear_meter(1.0);
    let direct = meter.projected_lifespan_years(m.ssd_host_writes, m.step_secs);
    assert!((direct - years).abs() < 1e-9);
}

#[test]
fn ssd_wear_accumulates_across_steps() {
    // The wear meter on the spill target integrates host writes over
    // steps — the quantity the lifespan projection divides endurance by.
    let mut s = offload_session(Arch::Bert, 8192, 4, 16);
    let _ = s.profile_step().expect("profile step");
    let w1 = s.run_step().expect("step").ssd_host_writes;
    let w2 = s.run_step().expect("step").ssd_host_writes;
    assert!(w1 > 0 && w2 > 0);
    // Per-step traffic is stable (same shapes, same plan).
    assert_eq!(w1, w2);
    // The target's cumulative wear covers the profile step plus both
    // measured steps.
    let cache = s.cache().expect("offload");
    assert!(cache.target().bytes_written() >= w1 + w2);
}

#[test]
fn gradient_accumulation_equals_full_batch() {
    // Data parallelism / gradient accumulation correctness: the mean
    // loss over a concatenated batch has gradients equal to the average
    // of the per-half gradients — so the trainer's micro-batch loop (and
    // a DP group's allreduce-mean) reproduces large-batch training
    // exactly.
    use ssdtrain_autograd::Graph;
    use ssdtrain_models::{Batch, Model, Recompute};
    use ssdtrain_tensor::{Device, Tensor};

    let dev = Device::cpu();
    let cfg = ModelConfig::tiny_gpt();
    let model = Model::build(&cfg, &dev, 9);

    let half = |seed: u64| Batch::synthetic(&cfg, 2, seed, &dev);
    let (b1, b2) = (half(100), half(101));

    // Concatenate the two half-batches by hand.
    let cat = |a: &Tensor, b: &Tensor| {
        let mut v = a.to_vec();
        v.extend(b.to_vec());
        Tensor::from_vec(v, [4, cfg.seq], &dev)
    };
    let full = Batch {
        tokens: cat(&b1.tokens, &b2.tokens),
        dec_tokens: None,
        targets: cat(&b1.targets, &b2.targets),
        batch: 4,
    };

    // Full-batch gradients.
    let g = Graph::new(&dev, 3);
    let loss_full = model.forward_loss(&g, &full, Recompute::None);
    g.backward(&loss_full);
    let want: Vec<Vec<f32>> = model
        .parameters()
        .iter()
        .map(|p| {
            let v = p.grad().expect("grad").to_vec();
            p.zero_grad();
            v
        })
        .collect();

    // Accumulated half-batch gradients, averaged.
    let mut half_losses = Vec::new();
    for b in [&b1, &b2] {
        let g = Graph::new(&dev, 3);
        let loss = model.forward_loss(&g, b, Recompute::None);
        half_losses.push(loss.tensor().item());
        g.backward(&loss);
    }
    for (p, want) in model.parameters().iter().zip(&want) {
        let got: Vec<f32> = p
            .grad()
            .expect("grad")
            .to_vec()
            .iter()
            .map(|x| x / 2.0)
            .collect();
        for (a, b) in got.iter().zip(want) {
            assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
        }
    }
    let mean_half = (half_losses[0] + half_losses[1]) / 2.0;
    assert!((loss_full.tensor().item() - mean_half).abs() < 1e-5);
}
