//! The observability layer's two load-bearing guarantees:
//!
//! 1. **Byte stability.** The Chrome-trace JSON for a fixed-seed run is
//!    a pure function of the configuration — same config, same bytes.
//!    A golden file pins the exporter's format and the event stream's
//!    determinism at once; regenerate it after intentional changes with
//!    `UPDATE_GOLDEN=1 cargo test --test trace_observability`.
//!
//! 2. **Accounting.** Trace-derived byte totals must equal the cache's
//!    own [`OffloadStats`] counters exactly — including under injected
//!    faults, where failed stores are re-routed (fallback) or kept
//!    resident and must leave the primary account through the same
//!    identities the trace records.

use ssdtrain::{
    chrome_trace_json, ArgValue, EventKind, OffloadStats, RecoveryPolicy, TensorCacheConfig,
    TraceCategory, TraceEvent, TraceSink,
};
use ssdtrain_models::ModelConfig;
use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger, SystemConfig};
use ssdtrain_train::{OffloadBackend, SessionConfig, TrainSession};
use std::collections::BTreeSet;
use std::path::Path;

const STEPS: usize = 2;

/// The fixed-seed configuration both the golden file and the accounting
/// tests run: a numeric tiny-GPT step offloading everything, so every
/// lane of the trace carries events.
fn traced_session(
    sink: TraceSink,
    backend: OffloadBackend,
    recovery: RecoveryPolicy,
    fault: Option<FaultPlan>,
    fallback: Option<OffloadBackend>,
) -> TrainSession {
    let mut builder = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .recovery(recovery)
        .seed(7)
        .backend(backend)
        .trace(sink);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    if let Some(fb) = fallback {
        builder = builder.fallback(fb);
    }
    TrainSession::new(builder.build().expect("valid config")).expect("session")
}

/// Runs `STEPS` steps and returns the per-step offload stats snapshot.
fn run(session: &mut TrainSession) -> Vec<OffloadStats> {
    (0..STEPS)
        .map(|_| session.run_step().expect("step").offload)
        .collect()
}

/// Sums the byte payloads of all events named `name` within `step`.
fn sum_bytes(events: &[TraceEvent], step: u32, name: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.step == step && e.name == name)
        .filter_map(|e| e.bytes())
        .sum()
}

/// Asserts the per-step trace/stat identities the exporter documents:
/// every byte the cache reports moving is visible in the event stream.
fn assert_accounting(events: &[TraceEvent], per_step: &[OffloadStats]) {
    for (i, stats) in per_step.iter().enumerate() {
        let step = (i + 1) as u32;
        let stored = sum_bytes(events, step, "store.enqueue")
            - sum_bytes(events, step, "store.cancel")
            - sum_bytes(events, step, "recovery.keep_resident")
            - sum_bytes(events, step, "recovery.fallback");
        assert_eq!(stored, stats.offloaded_bytes, "step {step}: store bytes");
        assert_eq!(
            sum_bytes(events, step, "load"),
            stats.reloaded_bytes,
            "step {step}: load bytes"
        );
        assert_eq!(
            sum_bytes(events, step, "recovery.fallback"),
            stats.fallback_bytes,
            "step {step}: fallback bytes"
        );
        assert_eq!(
            sum_bytes(events, step, "recovery.keep_resident"),
            stats.kept_resident_bytes,
            "step {step}: kept-resident bytes"
        );
        assert_eq!(
            sum_bytes(events, step, "store.cancel"),
            stats.cancelled_bytes,
            "step {step}: cancelled bytes"
        );
    }
}

#[test]
fn golden_chrome_trace_is_byte_stable() {
    // CPU target: no spill files, so the run touches nothing outside the
    // simulator — the trace depends on the configuration alone.
    let sink = TraceSink::enabled();
    let mut s = traced_session(
        sink.clone(),
        OffloadBackend::Dram,
        RecoveryPolicy::KeepResident,
        None,
        None,
    );
    let _ = run(&mut s);
    let json = chrome_trace_json(&sink.events());

    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quickstart_trace.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &json).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden).expect(
        "golden file missing; regenerate with UPDATE_GOLDEN=1 cargo test --test trace_observability",
    );
    assert_eq!(
        json, want,
        "chrome trace drifted from tests/golden/quickstart_trace.json; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn identical_runs_emit_identical_traces() {
    // The same determinism as the golden test, but self-contained (and
    // on the SSD target, where real spill files are in the loop).
    let trace_of = || {
        let sink = TraceSink::enabled();
        let mut s = traced_session(
            sink.clone(),
            OffloadBackend::Ssd,
            RecoveryPolicy::KeepResident,
            None,
            None,
        );
        let _ = run(&mut s);
        chrome_trace_json(&sink.events())
    };
    assert_eq!(trace_of(), trace_of());
}

#[test]
fn trace_byte_totals_match_offload_stats() {
    let sink = TraceSink::enabled();
    let mut s = traced_session(
        sink.clone(),
        OffloadBackend::Ssd,
        RecoveryPolicy::KeepResident,
        None,
        None,
    );
    let per_step = run(&mut s);
    assert!(per_step.iter().all(|m| m.offloaded_bytes > 0));
    assert_accounting(&sink.events(), &per_step);
}

#[test]
fn trace_accounting_survives_injected_write_faults() {
    // Keep-resident: failed stores stay on the GPU and the trace's
    // recovery lane must carry exactly the bytes the stats report.
    let plan = FaultPlan::new(42).with_recurring_fault(
        FaultTrigger::ByteThreshold { bytes: 16 << 10 },
        FaultKind::WriteError,
    );
    let sink = TraceSink::enabled();
    let mut s = traced_session(
        sink.clone(),
        OffloadBackend::Ssd,
        RecoveryPolicy::KeepResident,
        Some(plan),
        None,
    );
    let per_step = run(&mut s);
    assert!(
        per_step.iter().any(|m| m.kept_resident_bytes > 0),
        "the fault plan must actually fire"
    );
    let events = sink.events();
    assert_accounting(&events, &per_step);
    let cats: BTreeSet<&str> = events.iter().map(|e| e.cat.as_str()).collect();
    assert!(cats.contains(TraceCategory::Fault.as_str()));
    assert!(cats.contains(TraceCategory::Recovery.as_str()));
}

#[test]
fn trace_accounting_survives_fallback_rerouting() {
    // Fallback-target: failed stores re-route to the host pool; the
    // byte identities still close because the fallback lane absorbs
    // exactly what leaves the primary account.
    let plan = FaultPlan::new(42).with_recurring_fault(
        FaultTrigger::ByteThreshold { bytes: 16 << 10 },
        FaultKind::WriteError,
    );
    let sink = TraceSink::enabled();
    let mut s = traced_session(
        sink.clone(),
        OffloadBackend::Ssd,
        RecoveryPolicy::FallbackTarget,
        Some(plan),
        Some(OffloadBackend::Dram),
    );
    let per_step = run(&mut s);
    assert!(
        per_step.iter().any(|m| m.fallback_bytes > 0),
        "the fault plan must actually fire"
    );
    assert_accounting(&sink.events(), &per_step);
}

/// Coalesced-path variant of the fixed-seed session: same model and
/// seed, but stores ride 1 MiB segments and backward consumes groups of
/// two modules on the double buffer.
fn coalesced_session(
    sink: TraceSink,
    recovery: RecoveryPolicy,
    fault: Option<FaultPlan>,
    fallback: Option<OffloadBackend>,
) -> TrainSession {
    let mut cache = TensorCacheConfig::offload_everything();
    cache.coalesce_segment_bytes = 1 << 20;
    cache.prefetch_group_modules = 2;
    let mut builder = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(cache)
        .recovery(recovery)
        .seed(7)
        .backend(OffloadBackend::Ssd)
        .trace(sink);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    if let Some(fb) = fallback {
        builder = builder.fallback(fb);
    }
    TrainSession::new(builder.build().expect("valid config")).expect("session")
}

#[test]
fn trace_accounting_holds_on_the_coalesced_path() {
    // Segments batch many tensors into one store job, but the per-record
    // byte identities must close exactly as on the per-tensor path.
    let sink = TraceSink::enabled();
    let mut s = coalesced_session(sink.clone(), RecoveryPolicy::KeepResident, None, None);
    let per_step = run(&mut s);
    assert!(per_step.iter().all(|m| m.offloaded_bytes > 0));
    assert!(
        per_step.iter().any(|m| m.coalesce_segments > 0),
        "the coalescer must actually seal segments"
    );
    assert!(
        per_step.iter().any(|m| m.prefetch_groups > 0),
        "group prefetch must actually run"
    );
    assert_accounting(&sink.events(), &per_step);
    let cats: BTreeSet<&str> = sink.events().iter().map(|e| e.cat.as_str()).collect();
    assert!(cats.contains(TraceCategory::Coalesce.as_str()));
    assert!(cats.contains(TraceCategory::Arena.as_str()));
}

#[test]
fn trace_accounting_survives_faults_on_the_coalesced_path() {
    // A failed segment write degrades the whole segment per the policy;
    // the recovery lane must absorb exactly the bytes that leave the
    // primary account — same identity, segment granularity.
    for (recovery, fallback) in [
        (RecoveryPolicy::KeepResident, None),
        (RecoveryPolicy::FallbackTarget, Some(OffloadBackend::Dram)),
    ] {
        let plan = FaultPlan::new(42).with_recurring_fault(
            FaultTrigger::ByteThreshold { bytes: 16 << 10 },
            FaultKind::WriteError,
        );
        let sink = TraceSink::enabled();
        let mut s = coalesced_session(sink.clone(), recovery, Some(plan), fallback);
        let per_step = run(&mut s);
        assert!(
            per_step
                .iter()
                .any(|m| m.kept_resident_bytes > 0 || m.fallback_bytes > 0),
            "{recovery:?}: the fault plan must actually fire"
        );
        assert_accounting(&sink.events(), &per_step);
    }
}

#[test]
fn tier_drain_spans_match_the_stall_counters() {
    // Per step, the `tier.drain.<link>` spans decompose the stall the
    // stats report: their summed durations equal the summed per-tier
    // stall counters, and `store_stall_secs` — the simulated clock's
    // advance at the barriers — is bounded by that sum (links drain
    // concurrently inside one barrier) with exact equality on a
    // single-link backend. The `tier.io.<name>` instants mirror the same
    // counters byte for byte.
    //
    // The testbed's array hides the tiny model's traffic entirely, so
    // slow its write path until the stage barrier exposes a drain.
    let mut sys = SystemConfig::dac_testbed();
    sys.ssd_array.member.write_bps = 1e6;
    let sink = TraceSink::enabled();
    let cfg = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(TensorCacheConfig::offload_everything())
        .system(sys)
        .seed(7)
        .backend(OffloadBackend::Ssd)
        .trace(sink.clone())
        .build()
        .expect("valid config");
    let mut s = TrainSession::new(cfg).expect("session");
    let per_step = run(&mut s);
    let events = sink.events();

    let mut saw_a_drain = false;
    for (i, stats) in per_step.iter().enumerate() {
        let step = (i + 1) as u32;
        let span_sum: f64 = events
            .iter()
            .filter(|e| {
                e.step == step && e.cat == TraceCategory::Tier && e.name.starts_with("tier.drain.")
            })
            .map(|e| match e.kind {
                EventKind::Span { dur_secs } => dur_secs,
                _ => panic!("tier.drain must be a span"),
            })
            .sum();
        let counter_sum: f64 = stats.tiers.iter().map(|t| t.stall_secs).sum();
        assert!(
            (span_sum - counter_sum).abs() < 1e-9,
            "step {step}: drain spans {span_sum} vs stall counters {counter_sum}"
        );
        // Single-link backend: the clock stall IS the one link's drain.
        assert!(
            (stats.store_stall_secs - span_sum).abs() < 1e-9,
            "step {step}: store_stall_secs {} vs spans {span_sum}",
            stats.store_stall_secs
        );
        saw_a_drain |= span_sum > 0.0;

        for counters in &stats.tiers {
            let name = format!("tier.io.{}", counters.name);
            if counters.bytes_written == 0 && counters.bytes_read == 0 {
                continue;
            }
            let ev = events
                .iter()
                .find(|e| e.step == step && e.name == name)
                .unwrap_or_else(|| panic!("step {step}: missing {name} instant"));
            let arg_u64 = |key: &str| match ev.args.iter().find(|(k, _)| *k == key) {
                Some((_, ArgValue::U64(v))) => *v,
                other => panic!("{name} {key}: unexpected arg {other:?}"),
            };
            let arg_f64 = |key: &str| match ev.args.iter().find(|(k, _)| *k == key) {
                Some((_, ArgValue::F64(v))) => *v,
                other => panic!("{name} {key}: unexpected arg {other:?}"),
            };
            assert_eq!(arg_u64("bytes_written"), counters.bytes_written);
            assert_eq!(arg_u64("bytes_read"), counters.bytes_read);
            assert!((arg_f64("write_busy_secs") - counters.write_busy_secs).abs() < 1e-12);
            assert!((arg_f64("read_busy_secs") - counters.read_busy_secs).abs() < 1e-12);
            assert!((arg_f64("stall_secs") - counters.stall_secs).abs() < 1e-12);
        }
    }
    assert!(
        saw_a_drain,
        "the slowed write link must expose at least one drain span"
    );
}

#[test]
fn traced_run_covers_the_documented_categories() {
    let plan = FaultPlan::new(42).with_fault(FaultTrigger::NthOp { nth: 6 }, FaultKind::WriteError);
    let sink = TraceSink::enabled();
    let mut s = traced_session(
        sink.clone(),
        OffloadBackend::Ssd,
        RecoveryPolicy::KeepResident,
        Some(plan),
        None,
    );
    let _ = run(&mut s);
    let cats: BTreeSet<&str> = sink.events().iter().map(|e| e.cat.as_str()).collect();
    for required in [
        TraceCategory::Session,
        TraceCategory::Stage,
        TraceCategory::Store,
        TraceCategory::Load,
        TraceCategory::Prefetch,
        TraceCategory::Dedup,
        TraceCategory::Fault,
        TraceCategory::Recovery,
        TraceCategory::Alloc,
        TraceCategory::Arena,
    ] {
        assert!(
            cats.contains(required.as_str()),
            "missing {required:?} in {cats:?}"
        );
    }
}

#[test]
fn disabled_sink_records_nothing() {
    // The default session carries a disabled sink: the step must not
    // accumulate events anywhere (the "free when off" overhead bound).
    let mut s = traced_session(
        TraceSink::disabled(),
        OffloadBackend::Ssd,
        RecoveryPolicy::KeepResident,
        None,
        None,
    );
    let _ = run(&mut s);
    assert!(s.trace().is_empty());
    assert!(!s.trace().is_enabled());
}
