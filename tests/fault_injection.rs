//! Differential numerics under injected faults (the PR's tentpole
//! guarantee): a training run whose offload target misbehaves must
//! either produce **bit-identical losses** to the healthy run (the
//! `KeepResident` / `FallbackTarget` recovery policies) or surface a
//! structured [`StepError`] (the `FailStep` policy) — never panic and
//! never silently corrupt numerics.
//!
//! The matrix covers every [`FaultTrigger`] variant crossed with every
//! [`RecoveryPolicy`], plus read faults (unrecoverable by design) and
//! `SlowIo` degradation (numerics preserved, time stretched).

use ssdtrain::{RecoveryPolicy, TensorCacheConfig};
use ssdtrain_models::ModelConfig;
use ssdtrain_simhw::{FaultKind, FaultPlan, FaultTrigger};
use ssdtrain_train::{SessionConfig, StepMetrics, TrainSession};

const STEPS: usize = 3;

fn session_with(
    fault: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    cache: TensorCacheConfig,
) -> TrainSession {
    let mut builder = SessionConfig::builder()
        .model(ModelConfig::tiny_gpt())
        .batch_size(2)
        .cache(cache)
        .recovery(recovery)
        .seed(23);
    if let Some(plan) = fault {
        builder = builder.fault(plan);
    }
    let cfg = builder.build().expect("valid config");
    TrainSession::new(cfg).expect("session construction")
}

fn session(fault: Option<FaultPlan>, recovery: RecoveryPolicy) -> TrainSession {
    session_with(fault, recovery, TensorCacheConfig::offload_everything())
}

/// The zero-copy pipeline variant of the same run: stores coalesce into
/// 1 MiB segments and backward consumes module groups of two on the
/// double buffer.
fn coalesced_session(fault: Option<FaultPlan>, recovery: RecoveryPolicy) -> TrainSession {
    let mut cache = TensorCacheConfig::offload_everything();
    cache.coalesce_segment_bytes = 1 << 20;
    cache.prefetch_group_modules = 2;
    session_with(fault, recovery, cache)
}

/// Runs `STEPS` steps, asserting every one succeeds, and returns the
/// per-step metrics.
fn run(s: &mut TrainSession) -> Vec<StepMetrics> {
    (0..STEPS)
        .map(|i| {
            s.run_step()
                .unwrap_or_else(|e| panic!("step {i} should recover, got: {e}"))
        })
        .collect()
}

fn loss_bits(metrics: &[StepMetrics]) -> Vec<u32> {
    metrics.iter().map(|m| m.loss.to_bits()).collect()
}

fn baseline_bits() -> Vec<u32> {
    loss_bits(&run(&mut session(None, RecoveryPolicy::KeepResident)))
}

/// All write-capable triggers, each built around the same injected
/// write failure.
fn write_fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            // Op 0 is the run's first committed store; later op indices
            // interleave with restore reads, which a write fault skips.
            "nth-op",
            FaultPlan::new(7).with_fault(FaultTrigger::NthOp { nth: 0 }, FaultKind::WriteError),
        ),
        (
            "byte-threshold",
            FaultPlan::new(7).with_fault(
                FaultTrigger::ByteThreshold { bytes: 1 },
                FaultKind::WriteError,
            ),
        ),
        (
            "wear-fraction",
            FaultPlan::new(7).with_fault(
                FaultTrigger::WearFraction { fraction: 0.0 },
                FaultKind::EnduranceExhausted,
            ),
        ),
        (
            "random",
            FaultPlan::new(7).with_fault(FaultTrigger::Random { prob: 1.0 }, FaultKind::WriteError),
        ),
    ]
}

#[test]
fn healthy_runs_are_deterministic() {
    // The anchor for every differential test below.
    assert_eq!(baseline_bits(), baseline_bits());
}

#[test]
fn keep_resident_is_bit_identical_for_every_trigger() {
    let base = baseline_bits();
    for (name, plan) in write_fault_plans() {
        let mut s = session(Some(plan), RecoveryPolicy::KeepResident);
        let metrics = run(&mut s);
        assert_eq!(
            loss_bits(&metrics),
            base,
            "{name}: keep-resident recovery must not change numerics"
        );
        let log = s.fault_log().expect("session has a fault plan");
        assert!(log.write_faults >= 1, "{name}: the fault should fire");
        let failures: u64 = metrics.iter().map(|m| m.offload.store_failures).sum();
        let kept: u64 = metrics.iter().map(|m| m.offload.kept_resident_bytes).sum();
        assert!(failures >= 1, "{name}: store_failures should be counted");
        assert!(kept > 0, "{name}: failed stores should stay resident");
        assert!(
            metrics.iter().any(StepMetrics::degraded),
            "{name}: the affected step should report degraded mode"
        );
    }
}

#[test]
fn fallback_target_is_bit_identical_for_every_trigger() {
    let base = baseline_bits();
    for (name, plan) in write_fault_plans() {
        let mut s = session(Some(plan), RecoveryPolicy::FallbackTarget);
        let metrics = run(&mut s);
        assert_eq!(
            loss_bits(&metrics),
            base,
            "{name}: fallback recovery must not change numerics"
        );
        let fallback: u64 = metrics.iter().map(|m| m.offload.fallback_bytes).sum();
        assert!(
            fallback > 0,
            "{name}: failed stores should land on the fallback target"
        );
        let failures: u64 = metrics.iter().map(|m| m.offload.store_failures).sum();
        assert!(failures >= 1, "{name}: store_failures should be counted");
    }
}

#[test]
fn fail_step_surfaces_structured_error_for_every_trigger() {
    for (name, plan) in write_fault_plans() {
        let mut s = session(Some(plan), RecoveryPolicy::FailStep);
        let mut saw_error = false;
        for _ in 0..STEPS {
            match s.run_step() {
                Ok(_) => {}
                Err(err) => {
                    saw_error = true;
                    assert!(
                        err.error.is_store(),
                        "{name}: a write fault surfaces as a store error"
                    );
                    let m = err.metrics.as_ref().expect("degraded metrics attached");
                    assert!(m.offload.store_failures >= 1, "{name}");
                    // The write failed after the payload left the GPU
                    // copy untouched, so even the failing step's own
                    // loss is the healthy one.
                    assert!(m.loss.is_finite(), "{name}: loss stays numeric");
                }
            }
        }
        assert!(
            saw_error,
            "{name}: fail-step policy should surface the fault"
        );
    }
}

#[test]
fn coalesced_path_is_bit_identical_to_the_per_tensor_path() {
    // The pipeline changes *when and how* bytes move, never *what*
    // comes back: a healthy coalesced + group-prefetched run reproduces
    // the per-tensor baseline bit for bit, while actually exercising
    // the segment path.
    let base = baseline_bits();
    let mut s = coalesced_session(None, RecoveryPolicy::KeepResident);
    let metrics = run(&mut s);
    assert_eq!(
        loss_bits(&metrics),
        base,
        "coalescing must not change numerics"
    );
    let segments: u64 = metrics.iter().map(|m| m.offload.coalesce_segments).sum();
    let groups: u64 = metrics.iter().map(|m| m.offload.prefetch_groups).sum();
    assert!(segments > 0, "the coalescer must actually seal segments");
    assert!(groups > 0, "group prefetch must actually run");
}

#[test]
fn coalesced_keep_resident_is_bit_identical_for_every_trigger() {
    // A failed segment write degrades the whole segment (its members
    // stay resident), per RecoveryPolicy — still bit-identical.
    let base = baseline_bits();
    for (name, plan) in write_fault_plans() {
        let mut s = coalesced_session(Some(plan), RecoveryPolicy::KeepResident);
        let metrics = run(&mut s);
        assert_eq!(
            loss_bits(&metrics),
            base,
            "{name}: coalesced keep-resident recovery must not change numerics"
        );
        let log = s.fault_log().expect("session has a fault plan");
        assert!(log.write_faults >= 1, "{name}: the fault should fire");
        let failures: u64 = metrics.iter().map(|m| m.offload.store_failures).sum();
        let kept: u64 = metrics.iter().map(|m| m.offload.kept_resident_bytes).sum();
        assert!(failures >= 1, "{name}: store_failures should be counted");
        assert!(
            kept > 0,
            "{name}: the failed segment's members stay resident"
        );
    }
}

#[test]
fn coalesced_fallback_target_is_bit_identical_for_every_trigger() {
    let base = baseline_bits();
    for (name, plan) in write_fault_plans() {
        let mut s = coalesced_session(Some(plan), RecoveryPolicy::FallbackTarget);
        let metrics = run(&mut s);
        assert_eq!(
            loss_bits(&metrics),
            base,
            "{name}: coalesced fallback recovery must not change numerics"
        );
        let fallback: u64 = metrics.iter().map(|m| m.offload.fallback_bytes).sum();
        assert!(
            fallback > 0,
            "{name}: the failed segment's members should demote to the fallback"
        );
        let failures: u64 = metrics.iter().map(|m| m.offload.store_failures).sum();
        assert!(failures >= 1, "{name}: store_failures should be counted");
    }
}

#[test]
fn coalesced_fail_step_surfaces_structured_error_for_every_trigger() {
    for (name, plan) in write_fault_plans() {
        let mut s = coalesced_session(Some(plan), RecoveryPolicy::FailStep);
        let mut saw_error = false;
        for _ in 0..STEPS {
            match s.run_step() {
                Ok(_) => {}
                Err(err) => {
                    saw_error = true;
                    assert!(
                        err.error.is_store(),
                        "{name}: a segment write fault surfaces as a store error"
                    );
                    let m = err.metrics.as_ref().expect("degraded metrics attached");
                    assert!(m.offload.store_failures >= 1, "{name}");
                    assert!(m.loss.is_finite(), "{name}: loss stays numeric");
                }
            }
        }
        assert!(
            saw_error,
            "{name}: fail-step policy should surface the segment fault"
        );
    }
}

#[test]
fn read_faults_always_surface_as_load_errors() {
    // Lost activation bytes are unrecoverable (the GPU copy is released
    // once the store commits), so every policy surfaces a load error
    // after exhausting its retries.
    for policy in [
        RecoveryPolicy::KeepResident,
        RecoveryPolicy::FallbackTarget,
        RecoveryPolicy::FailStep,
    ] {
        let plan = FaultPlan::new(11).with_recurring_fault(
            FaultTrigger::ByteThreshold { bytes: 0 },
            FaultKind::ReadError,
        );
        let mut s = session(Some(plan), policy);
        let mut saw_load_error = false;
        for _ in 0..STEPS {
            if let Err(err) = s.run_step() {
                saw_load_error = true;
                assert!(
                    !err.error.is_store(),
                    "{policy:?}: a read fault surfaces as a load error"
                );
                let m = err.metrics.expect("degraded metrics attached");
                assert!(m.offload.load_retries >= 1, "{policy:?}: retries counted");
            }
        }
        assert!(
            saw_load_error,
            "{policy:?}: unreadable activations must surface an error"
        );
    }
}

#[test]
fn slow_io_preserves_numerics_and_stretches_the_step() {
    let base = run(&mut session(None, RecoveryPolicy::KeepResident));
    let plan = FaultPlan::new(3).with_fault(
        FaultTrigger::NthOp { nth: 0 },
        FaultKind::SlowIo { factor: 64.0 },
    );
    let mut s = session(Some(plan), RecoveryPolicy::KeepResident);
    let slowed = run(&mut s);
    assert_eq!(
        loss_bits(&slowed),
        loss_bits(&base),
        "throttling is a timing event, not a numeric one"
    );
    let log = s.fault_log().expect("session has a fault plan");
    assert_eq!(log.slowdowns, 1);
    // A 64x-slower device can only make simulated steps slower.
    let base_total: f64 = base.iter().map(|m| m.step_secs).sum();
    let slow_total: f64 = slowed.iter().map(|m| m.step_secs).sum();
    assert!(
        slow_total >= base_total,
        "throttled run should not get faster ({slow_total} < {base_total})"
    );
    // SlowIo is degradation, not failure: nothing should be rerouted.
    for m in &slowed {
        assert_eq!(m.offload.store_failures, 0);
        assert_eq!(m.offload.kept_resident_bytes, 0);
        assert_eq!(m.offload.fallback_bytes, 0);
    }
}

#[test]
fn fault_free_plan_changes_nothing() {
    // A session carrying an empty plan must behave exactly like one
    // without the decorator at all.
    let base = baseline_bits();
    let mut s = session(Some(FaultPlan::new(99)), RecoveryPolicy::KeepResident);
    let metrics = run(&mut s);
    assert_eq!(loss_bits(&metrics), base);
    let log = s.fault_log().expect("plan attached");
    assert_eq!(log.write_faults + log.read_faults, 0);
    assert!(log.ops > 0, "the decorator still observes traffic");
}
