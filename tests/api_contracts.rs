//! API-contract checks: thread-safety markers on the shared types
//! (hooks are called from engine internals and must be `Send + Sync`),
//! and `Debug`/`Display` coverage on public types.

use ssdtrain::{
    AdaptivePlan, IoEngine, OffloadStats, PlacementStrategy, StageHint, TensorCache,
    TensorCacheConfig,
};
use ssdtrain_autograd::{OpCost, Packed, Phase, Var};
use ssdtrain_simhw::{Channel, GpuMemory, GpuSpec, Raid0, SimClock, SimTime, SystemConfig};
use ssdtrain_tensor::{Device, Prng, Shape, Storage, Tensor};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn shared_types_are_send_and_sync() {
    assert_send::<Device>();
    assert_sync::<Device>();
    assert_send::<Storage>();
    assert_sync::<Storage>();
    assert_send::<Tensor>();
    assert_sync::<Tensor>();
    assert_send::<Var>();
    assert_sync::<Var>();
    assert_send::<TensorCache>();
    assert_sync::<TensorCache>();
    assert_send::<IoEngine>();
    assert_sync::<IoEngine>();
    assert_send::<GpuMemory>();
    assert_sync::<GpuMemory>();
    assert_send::<Channel>();
    assert_sync::<Channel>();
    assert_send::<SimClock>();
    assert_sync::<SimClock>();
}

#[test]
fn storages_survive_cross_thread_traffic() {
    // A storage released on one thread and restored on another keeps its
    // accounting coherent — the store/load pool pattern.
    let dev = Device::cpu();
    let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3], &dev);
    let storage = t.storage().clone();
    let bytes = storage.to_bytes().expect("numeric");
    let handle = std::thread::spawn(move || {
        storage.release();
        storage
    });
    let storage = handle.join().expect("thread");
    let decoded = storage.decode_bytes(&bytes);
    let handle = std::thread::spawn(move || {
        storage.restore_numeric(decoded);
        storage
    });
    let storage = handle.join().expect("thread");
    assert_eq!(storage.to_vec().unwrap(), vec![1.0, 2.0, 3.0]);
}

#[test]
fn debug_representations_are_never_empty() {
    let dev = Device::cpu();
    let reprs = [
        format!("{:?}", dev),
        format!("{:?}", Tensor::zeros([1], &dev)),
        format!("{:?}", Var::new("v", Tensor::zeros([1], &dev))),
        format!("{:?}", Shape::scalar()),
        format!("{:?}", Prng::seed_from_u64(1)),
        format!("{:?}", SimTime::ZERO),
        format!("{:?}", GpuSpec::a100_pcie_40gb()),
        format!("{:?}", SystemConfig::dac_testbed()),
        format!(
            "{:?}",
            Raid0::new(ssdtrain_simhw::catalog::ssds::optane_p5800x(), 2)
        ),
        format!("{:?}", TensorCacheConfig::default()),
        format!("{:?}", PlacementStrategy::Offload),
        format!("{:?}", StageHint::Backward),
        format!("{:?}", OffloadStats::default()),
        format!("{:?}", AdaptivePlan::default()),
        format!("{:?}", OpCost::default()),
        format!("{:?}", Phase::Forward),
        format!("{:?}", Packed::Opaque(1)),
    ];
    for r in reprs {
        assert!(!r.is_empty());
    }
}

#[test]
fn display_types_render_usefully() {
    assert_eq!(PlacementStrategy::Keep.to_string(), "keep");
    assert_eq!(Phase::Recompute.to_string(), "recompute");
    assert_eq!(Shape::from([2, 3]).to_string(), "[2, 3]");
    assert_eq!(SimTime::from_secs(1.0).to_string(), "1.000000s");
    assert_eq!(ssdtrain_tensor::DType::F16.to_string(), "f16");
    assert_eq!(
        ssdtrain_tensor::MemClass::Activation.to_string(),
        "activation"
    );
}
